// Tests for the machine-readable run report (ISSUE 2): schema fields,
// the monitor section's violation witness, and JSON well-formedness —
// plus the monitor's new cost counters the report surfaces.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/checker/monitor.hpp"
#include "src/obs/json.hpp"
#include "src/obs/report.hpp"
#include "src/protocols/async.hpp"
#include "src/protocols/fifo.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/library.hpp"

namespace msgorder {
namespace {

struct ReportedRun {
  SimResult result;
  std::shared_ptr<OnlineMonitor> monitor;
  std::string json;
};

ReportedRun report_for(const ProtocolFactory& factory,
                       const std::string& protocol_name,
                       Observability* obs) {
  Rng rng(31);
  WorkloadOptions wopts;
  wopts.n_processes = 4;
  wopts.n_messages = 60;
  wopts.mean_gap = 0.2;
  const Workload workload = random_workload(wopts, rng);

  auto monitor = std::make_shared<OnlineMonitor>(
      workload_universe(workload), causal_ordering());
  monitor->enable_timing();
  SimOptions sopts;
  sopts.seed = 12;
  sopts.network.jitter_mean = 4.0;
  sopts.observability = obs;
  sopts.observers.add(monitor_observer(monitor));
  SimResult result = simulate(workload, factory, wopts.n_processes, sopts);

  RunReportOptions ropts;
  ropts.protocol = protocol_name;
  ropts.n_processes = wopts.n_processes;
  ropts.seed = sopts.seed;
  std::string json = run_report_json(result, ropts, obs, monitor.get());
  return ReportedRun{std::move(result), std::move(monitor), std::move(json)};
}

TEST(RunReport, ValidJsonWithStableSchemaFields) {
  Observability obs;
  const ReportedRun r =
      report_for(FifoProtocol::factory(), "fifo", &obs);
  ASSERT_TRUE(r.result.completed) << r.result.error;

  std::string error;
  ASSERT_TRUE(json_validate(r.json, &error)) << error << "\n" << r.json;
  for (const char* field :
       {"\"schema\":\"msgorder.run_report/1\"", "\"protocol\":\"fifo\"",
        "\"n_processes\":4", "\"seed\":12", "\"completed\":true",
        "\"messages\"", "\"universe\":60", "\"overhead\"",
        "\"user_packets\"", "\"tag_bytes\"", "\"latency\"",
        "\"percentiles\"", "\"monitor\"", "\"events_seen\"",
        "\"metrics\"", "\"counters\"", "\"histograms\""}) {
    EXPECT_NE(r.json.find(field), std::string::npos) << field;
  }
}

TEST(RunReport, ViolatingRunCarriesTheWitness) {
  // The raw async protocol on a heavily jittered network violates causal
  // ordering; the monitor's first witness must appear in the report.
  const ReportedRun r =
      report_for(AsyncProtocol::factory(), "async", nullptr);
  ASSERT_TRUE(r.result.completed) << r.result.error;
  ASSERT_TRUE(r.monitor->violated());

  std::string error;
  ASSERT_TRUE(json_validate(r.json, &error)) << error;
  EXPECT_NE(r.json.find("\"violated\":true"), std::string::npos);
  EXPECT_NE(r.json.find("\"witness\":[{"), std::string::npos);
  EXPECT_NE(r.json.find("\"var\":\"x\""), std::string::npos);
  EXPECT_NE(r.json.find("\"var\":\"y\""), std::string::npos);
  EXPECT_NE(r.json.find("\"first_violation_time\""), std::string::npos);
  EXPECT_NE(r.json.find("\"specification\""), std::string::npos);
  // Without an Observability attached those sections degrade to null.
  EXPECT_NE(r.json.find("\"percentiles\":null"), std::string::npos);
  EXPECT_NE(r.json.find("\"metrics\":null"), std::string::npos);
}

TEST(RunReport, MonitorCostCountersAreReportedAndSane) {
  const ReportedRun r =
      report_for(AsyncProtocol::factory(), "async", nullptr);
  ASSERT_TRUE(r.result.completed) << r.result.error;

  // 60 messages x 4 system events each.
  EXPECT_EQ(r.monitor->events_seen(), 240u);
  EXPECT_EQ(r.monitor->timed_events(), 240u);
  EXPECT_GT(r.monitor->on_event_seconds(), 0.0);
  ASSERT_TRUE(r.monitor->violated());
  EXPECT_GT(r.monitor->events_to_detection(), 0u);
  EXPECT_LE(r.monitor->events_to_detection(), r.monitor->events_seen());
  EXPECT_NE(r.json.find("\"events_to_detection\""), std::string::npos);
}

TEST(RunReport, CleanRunHasNullWitnessAndPercentiles) {
  Observability obs;
  const ReportedRun r =
      report_for(FifoProtocol::factory(), "fifo", &obs);
  ASSERT_TRUE(r.result.completed) << r.result.error;

  // FIFO on this workload may or may not violate causal ordering; the
  // report must stay well-formed either way, and with an Observability
  // attached the percentiles are real numbers.
  EXPECT_NE(r.json.find("\"percentiles\":{\"p50\":"), std::string::npos);
  if (!r.monitor->violated()) {
    EXPECT_NE(r.json.find("\"witness\":null"), std::string::npos);
    EXPECT_EQ(r.monitor->events_to_detection(), 0u);
  }
}

}  // namespace
}  // namespace msgorder
