#include <gtest/gtest.h>

#include <set>

#include "src/protocols/registry.hpp"
#include "src/sim/simulator.hpp"

namespace msgorder {
namespace {

TEST(Registry, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (const RegisteredProtocol& rp : standard_protocols()) {
    EXPECT_FALSE(rp.name.empty());
    EXPECT_FALSE(rp.description.empty());
    EXPECT_TRUE(names.insert(rp.name).second) << rp.name;
  }
  EXPECT_GE(names.size(), 10u);
}

TEST(Registry, FactoriesProduceWorkingInstances) {
  // Each factory must construct and survive a minimal exchange.
  const Workload w = scripted_workload({{0.0, 0, 1, 0}, {0.5, 1, 2, 0}});
  for (const RegisteredProtocol& rp : standard_protocols()) {
    const SimResult result = simulate(w, rp.factory, 3);
    EXPECT_TRUE(result.completed) << rp.name << ": " << result.error;
  }
}

TEST(Registry, RegisteredNameMatchesInstanceName) {
  // The instance's self-reported name should start with the registry
  // key's stem (parameterized protocols append their arguments).
  class Probe final : public Host {
   public:
    void send_packet(Packet) override {}
    void deliver(MessageId) override {}
    void set_timer(SimTime, std::uint64_t) override {}
    SimTime now() const override { return 0; }
    ProcessId self() const override { return 0; }
    std::size_t process_count() const override { return 4; }
    const Message& message(MessageId) const override {
      static Message m{0, 0, 1, 0};
      return m;
    }
  };
  Probe probe;
  for (const RegisteredProtocol& rp : standard_protocols()) {
    const auto instance = rp.factory(probe);
    const std::string instance_name = instance->name();
    const std::string stem = rp.name.substr(0, rp.name.find('-'));
    EXPECT_NE(instance_name.find(stem.substr(0, 4)), std::string::npos)
        << rp.name << " vs " << instance_name;
  }
}

}  // namespace
}  // namespace msgorder
