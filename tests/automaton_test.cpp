// ISSUE 8: the spec-to-automaton compiler, the automaton runtime, the
// kAutomaton monitor mode (with witness parity against the bitset
// engine), the batched bitset fallback, and the counting specs.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <optional>
#include <tuple>
#include <vector>

#include "src/checker/automaton.hpp"
#include "src/checker/monitor.hpp"
#include "src/checker/violation.hpp"
#include "src/poset/run_generator.hpp"
#include "src/spec/compile.hpp"
#include "src/spec/library.hpp"
#include "src/util/rng.hpp"

namespace msgorder {
namespace {

constexpr auto S = UserEventKind::kSend;
constexpr auto R = UserEventKind::kDeliver;

/// A random complete feed: message population plus a global
/// interleaving of their send/deliver system events (user events only,
/// so detection-latency arithmetic is exact in the batching tests).
struct Feed {
  std::vector<Message> messages;
  std::vector<std::tuple<ProcessId, SystemEvent, double>> events;

  /// The same execution as a scheduled UserRun.
  UserRun to_run() const {
    std::size_t n_processes = 0;
    for (const Message& m : messages) {
      n_processes = std::max({n_processes,
                              static_cast<std::size_t>(m.src) + 1,
                              static_cast<std::size_t>(m.dst) + 1});
    }
    std::vector<std::vector<ScheduleStep>> schedules(n_processes);
    for (const auto& [process, event, time] : events) {
      schedules[process].push_back(
          ScheduleStep{event.msg, to_user_kind(event.kind)});
    }
    auto run = UserRun::from_schedules(messages, std::move(schedules));
    EXPECT_TRUE(run.has_value());
    return *run;
  }
};

Feed random_feed(Rng& rng, std::size_t n_processes, std::size_t n_messages,
                 const std::vector<int>& palette) {
  Feed feed;
  for (MessageId id = 0; id < n_messages; ++id) {
    const auto src = static_cast<ProcessId>(rng.below(n_processes));
    auto dst = static_cast<ProcessId>(rng.below(n_processes - 1));
    if (dst >= src) ++dst;  // no self-loop messages
    const int color =
        palette.empty()
            ? 0
            : palette[static_cast<std::size_t>(rng.below(palette.size()))];
    feed.messages.push_back(Message{id, src, dst, color});
  }
  std::vector<MessageId> unsent;
  std::vector<MessageId> in_flight;
  for (MessageId id = 0; id < n_messages; ++id) unsent.push_back(id);
  double time = 0;
  while (!unsent.empty() || !in_flight.empty()) {
    const bool send_next =
        !unsent.empty() && (in_flight.empty() || rng.uniform01() < 0.55);
    if (send_next) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.below(unsent.size()));
      const MessageId m = unsent[pick];
      unsent.erase(unsent.begin() + static_cast<long>(pick));
      feed.events.emplace_back(feed.messages[m].src,
                               SystemEvent{m, EventKind::kSend}, time);
      in_flight.push_back(m);
    } else {
      const std::size_t pick =
          static_cast<std::size_t>(rng.below(in_flight.size()));
      const MessageId m = in_flight[pick];
      in_flight.erase(in_flight.begin() + static_cast<long>(pick));
      feed.events.emplace_back(feed.messages[m].dst,
                               SystemEvent{m, EventKind::kDeliver}, time);
    }
    time += 1.0;
  }
  return feed;
}

// --- compiler structure ---

TEST(Compile, MarkedSendOrderCompiles) {
  const CompileResult result = compile_predicate(marked_send_order());
  ASSERT_TRUE(result.compiled()) << result.fallback_reason;
  const MonitorAutomaton& a = *result.automaton;
  EXPECT_EQ(a.scope, MonitorAutomaton::Scope::kPerProcess);
  EXPECT_EQ(a.symbols.n_classes(), 3u);  // colors 1, 2, other
  EXPECT_EQ(a.symbols.n_symbols(), 6u);
  EXPECT_TRUE(a.can_accept());
  EXPECT_EQ(a.dead_states, 0u);
  // {}, {x matched}, accept: the minimal machine for this pattern.
  EXPECT_EQ(a.n_states, 3u);
}

TEST(Compile, UnsatisfiablePredicatesCompileToDeadAutomaton) {
  for (const ForbiddenPredicate& p : async_zoo()) {
    const CompileResult result = compile_predicate(p);
    ASSERT_TRUE(result.compiled()) << p.to_string();
    EXPECT_FALSE(result.automaton->can_accept()) << p.to_string();
    EXPECT_EQ(result.automaton->n_states, 1u);
  }
}

TEST(Compile, CyclicPrecedenceCompilesToDeadAutomaton) {
  // x.s |> y.s & y.s |> x.s on one process: no strict order satisfies it.
  const ForbiddenPredicate cyclic =
      make_predicate(2, {{0, S, 1, S}, {1, S, 0, S}}, {{0, S, 1, S}});
  const CompileResult result = compile_predicate(cyclic);
  ASSERT_TRUE(result.compiled()) << result.fallback_reason;
  EXPECT_FALSE(result.automaton->can_accept());
}

TEST(Compile, RegistrySpecsCompileOrReportStructuredReason) {
  // Acceptance criterion: every registry spec either compiles or
  // reports a structured fallback reason.
  for (const NamedSpec& entry : spec_zoo()) {
    const CompileResult result = compile_predicate(entry.predicate);
    if (!result.compiled()) {
      EXPECT_EQ(result.fallback_reason.rfind("fallback: ", 0), 0u)
          << entry.name << ": " << result.fallback_reason;
    }
  }
  // Spot checks: the cross-process classics are not symbol-decidable…
  EXPECT_FALSE(compile_predicate(causal_ordering()).compiled());
  EXPECT_FALSE(compile_predicate(fifo()).compiled());
  EXPECT_FALSE(compile_predicate(sync_crown(2)).compiled());
  EXPECT_FALSE(compile_predicate(receive_second_before_first()).compiled());
  // …while the single-cluster marker pattern is.
  EXPECT_TRUE(compile_predicate(marked_send_order()).compiled());
}

TEST(Compile, NonNormalFormFallsBack) {
  ForbiddenPredicate p = marked_send_order();
  p.conjuncts.push_back(p.conjuncts.front());  // duplicate conjunct
  const CompileResult result = compile_predicate(p);
  EXPECT_FALSE(result.compiled());
  EXPECT_NE(result.fallback_reason.find("normal-form"), std::string::npos);
}

TEST(Compile, MixedKindClusterNeedsSelfLoopFreeUniverse) {
  // x's send then y's delivery on one process.
  const ForbiddenPredicate mixed =
      make_predicate(2, {{0, S, 1, R}}, {{0, S, 1, R}});
  EXPECT_FALSE(compile_predicate(mixed).compiled());  // no universe

  const std::vector<Message> clean = {{0, 0, 1, 0}, {1, 2, 0, 0}};
  EXPECT_TRUE(compile_predicate(mixed, &clean).compiled());

  const std::vector<Message> looped = {{0, 0, 0, 0}, {1, 2, 0, 0}};
  const CompileResult rejected = compile_predicate(mixed, &looped);
  EXPECT_FALSE(rejected.compiled());
  EXPECT_NE(rejected.fallback_reason.find("distinctness"),
            std::string::npos);
}

TEST(Compile, SymbolTableCompactsColors) {
  SymbolTable table;
  table.colors = {3, 7};
  EXPECT_EQ(table.color_class(3), 0u);
  EXPECT_EQ(table.color_class(7), 1u);
  EXPECT_EQ(table.color_class(0), 2u);
  EXPECT_EQ(table.color_class(100), 2u);
  EXPECT_EQ(table.symbol(S, 3), 0u);
  EXPECT_EQ(table.symbol(R, 3), 1u);
  EXPECT_EQ(table.symbol(S, 99), 4u);
  EXPECT_EQ(table.symbol_name(0), "send[color=3]");
  EXPECT_EQ(table.symbol_name(5), "deliver[other]");
}

// --- offline acceptance and the find_violation fast path ---

TEST(Automaton, AcceptsExactlyTheViolatingHandRuns) {
  const ForbiddenPredicate spec = marked_send_order(1, 2);
  const CompileResult compiled = compile_predicate(spec);
  ASSERT_TRUE(compiled.compiled());

  // Same sender, color 1 then color 2: forbidden.
  const std::vector<Message> bad = {{0, 0, 1, 1}, {1, 0, 2, 2}};
  const auto bad_run = UserRun::from_schedules(
      bad, {{{0, S}, {1, S}}, {{0, R}}, {{1, R}}});
  ASSERT_TRUE(bad_run.has_value());
  EXPECT_TRUE(automaton_accepts_run(*compiled.automaton, *bad_run));
  EXPECT_TRUE(find_violation(*bad_run, spec).has_value());

  // Reverse send order: allowed.
  const auto good_run = UserRun::from_schedules(
      bad, {{{1, S}, {0, S}}, {{0, R}}, {{1, R}}});
  ASSERT_TRUE(good_run.has_value());
  EXPECT_FALSE(automaton_accepts_run(*compiled.automaton, *good_run));
  EXPECT_FALSE(find_violation(*good_run, spec).has_value());

  // Different senders: allowed.
  const std::vector<Message> split = {{0, 0, 1, 1}, {1, 2, 1, 2}};
  const auto split_run = UserRun::from_schedules(
      split, {{{0, S}}, {{0, R}, {1, R}}, {{1, S}}});
  ASSERT_TRUE(split_run.has_value());
  EXPECT_FALSE(automaton_accepts_run(*compiled.automaton, *split_run));
  EXPECT_FALSE(find_violation(*split_run, spec).has_value());
}

TEST(Automaton, FindViolationFastPathMatchesNaiveOnRandomRuns) {
  Rng rng(811);
  const std::vector<ForbiddenPredicate> specs = {
      marked_send_order(1, 2), marked_send_order(2, 1),
      make_predicate(2, {{0, S, 1, R}}, {{0, S, 1, R}}),  // mixed-kind
      make_predicate(3, {{0, S, 1, S}, {1, S, 2, S}},
                     {{0, S, 1, S}, {1, S, 2, S}},
                     {{0, 1}, {2, 2}})};  // 3-chain with colors
  int violations = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const Feed feed = random_feed(rng, 3, 6, {0, 1, 2});
    const UserRun run = feed.to_run();
    for (const ForbiddenPredicate& spec : specs) {
      ASSERT_TRUE(compile_predicate(spec, &run.messages()).compiled());
      const auto fast = find_violation(run, spec);
      const auto naive = find_violation_naive(run, spec);
      ASSERT_EQ(fast.has_value(), naive.has_value())
          << spec.to_string() << "\n"
          << run.to_string();
      if (fast.has_value()) {
        ++violations;
        EXPECT_EQ(*fast, *naive);
      }
    }
  }
  EXPECT_GT(violations, 20);
}

// --- the kAutomaton monitor mode ---

TEST(Monitor, AutomatonModeMatchesPrunedAndNaiveOnRandomFeeds) {
  Rng rng(271);
  int fired = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const Feed feed = random_feed(rng, 4, 8, {0, 1, 2});
    const ForbiddenPredicate spec =
        trial % 2 == 0 ? marked_send_order(1, 2) : marked_send_order(2, 1);
    OnlineMonitor automaton(feed.messages, spec,
                            MonitorOptions{MonitorSearchMode::kAutomaton, 1});
    OnlineMonitor pruned(feed.messages, spec, MonitorSearchMode::kPruned);
    OnlineMonitor naive(feed.messages, spec, MonitorSearchMode::kNaive);
    ASSERT_TRUE(automaton.automaton_info().compiled);
    for (const auto& [process, event, time] : feed.events) {
      const bool a = automaton.on_event(process, event, time);
      const bool p = pruned.on_event(process, event, time);
      naive.on_event(process, event, time);
      if (!automaton.violated() || a) {
        // Until (and including) first detection the per-event verdicts
        // agree; afterwards the automaton stays silent by design.
        EXPECT_EQ(a, p);
      }
    }
    ASSERT_EQ(automaton.violated(), pruned.violated());
    ASSERT_EQ(pruned.violated(), naive.violated());
    if (automaton.violated()) {
      ++fired;
      EXPECT_EQ(automaton.first_witness(), pruned.first_witness());
      EXPECT_EQ(pruned.first_witness(), naive.first_witness());
      EXPECT_EQ(automaton.events_to_detection(),
                pruned.events_to_detection());
      EXPECT_EQ(automaton.first_violation_time(),
                pruned.first_violation_time());
      EXPECT_EQ(automaton.violation_count(), 1u);
    }
    EXPECT_GT(automaton.automaton_info().transitions, 0u);
  }
  EXPECT_GT(fired, 20);
}

TEST(Monitor, AutomatonFallbackReportsReasonAndBehavesLikePruned) {
  Rng rng(733);
  for (int trial = 0; trial < 40; ++trial) {
    const Feed feed = random_feed(rng, 3, 6, {0, 1});
    OnlineMonitor fallback(feed.messages, causal_ordering(),
                           MonitorOptions{MonitorSearchMode::kAutomaton, 1});
    OnlineMonitor pruned(feed.messages, causal_ordering(),
                         MonitorSearchMode::kPruned);
    const auto info = fallback.automaton_info();
    EXPECT_TRUE(info.requested);
    EXPECT_FALSE(info.compiled);
    EXPECT_EQ(info.fallback_reason.rfind("fallback: ", 0), 0u);
    for (const auto& [process, event, time] : feed.events) {
      EXPECT_EQ(fallback.on_event(process, event, time),
                pruned.on_event(process, event, time));
    }
    EXPECT_EQ(fallback.violated(), pruned.violated());
    EXPECT_EQ(fallback.first_witness(), pruned.first_witness());
    EXPECT_EQ(fallback.violation_count(), pruned.violation_count());
  }
}

TEST(Monitor, DeadAutomatonNeverFires) {
  Rng rng(911);
  const Feed feed = random_feed(rng, 3, 8, {0, 1});
  for (const ForbiddenPredicate& p : async_zoo()) {
    OnlineMonitor monitor(feed.messages, p,
                          MonitorOptions{MonitorSearchMode::kAutomaton, 1});
    ASSERT_TRUE(monitor.automaton_info().compiled);
    for (const auto& [process, event, time] : feed.events) {
      EXPECT_FALSE(monitor.on_event(process, event, time));
    }
    EXPECT_FALSE(monitor.violated());
  }
}

TEST(Monitor, ResetRestoresPostConstructionState) {
  Rng rng(101);
  const Feed feed = random_feed(rng, 4, 8, {1, 2});
  for (const MonitorSearchMode mode :
       {MonitorSearchMode::kPruned, MonitorSearchMode::kAutomaton}) {
    OnlineMonitor monitor(feed.messages, marked_send_order(),
                          MonitorOptions{mode, 1});
    const auto feed_all = [&] {
      for (const auto& [process, event, time] : feed.events) {
        monitor.on_event(process, event, time);
      }
    };
    feed_all();
    const bool verdict = monitor.violated();
    const auto witness = monitor.first_witness();
    const auto detection = monitor.events_to_detection();
    monitor.reset();
    EXPECT_FALSE(monitor.violated());
    EXPECT_EQ(monitor.events_seen(), 0u);
    feed_all();
    EXPECT_EQ(monitor.violated(), verdict);
    EXPECT_EQ(monitor.first_witness(), witness);
    EXPECT_EQ(monitor.events_to_detection(), detection);
  }
}

// --- batched bitset fallback (MonitorOptions::batch_size) ---

TEST(Monitor, BatchedSearchPreservesVerdictAtBatchGranularity) {
  Rng rng(577);
  int fired = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const Feed feed = random_feed(rng, 3, 7, {0, 1});
    const ForbiddenPredicate spec =
        trial % 2 == 0 ? causal_ordering() : fifo();
    for (const std::size_t batch : {std::size_t{2}, std::size_t{5}}) {
      OnlineMonitor batched(feed.messages, spec,
                            MonitorOptions{MonitorSearchMode::kPruned,
                                           batch});
      for (const auto& [process, event, time] : feed.events) {
        batched.on_event(process, event, time);
      }
      batched.flush();
      if (batched.violated()) ++fired;
      OnlineMonitor fresh(feed.messages, spec, MonitorSearchMode::kPruned);
      for (const auto& [process, event, time] : feed.events) {
        fresh.on_event(process, event, time);
      }
      ASSERT_EQ(batched.violated(), fresh.violated())
          << "batch=" << batch << "\n"
          << feed.to_run().to_string();
      if (fresh.violated()) {
        // Detection shifts by at most one batch of user events.
        EXPECT_GE(batched.events_to_detection(),
                  fresh.events_to_detection());
        EXPECT_LT(batched.events_to_detection(),
                  fresh.events_to_detection() + batch);
      }
    }
  }
  EXPECT_GT(fired, 10);
}

TEST(Monitor, BatchSizeOnePreservesExistingBehaviorExactly) {
  Rng rng(431);
  const Feed feed = random_feed(rng, 3, 8, {0, 1});
  OnlineMonitor a(feed.messages, causal_ordering(),
                  MonitorSearchMode::kPruned);
  OnlineMonitor b(feed.messages, causal_ordering(),
                  MonitorOptions{MonitorSearchMode::kPruned, 1});
  for (const auto& [process, event, time] : feed.events) {
    EXPECT_EQ(a.on_event(process, event, time),
              b.on_event(process, event, time));
  }
  EXPECT_EQ(a.violated(), b.violated());
  EXPECT_EQ(a.first_witness(), b.first_witness());
  EXPECT_EQ(a.violation_count(), b.violation_count());
  EXPECT_EQ(a.events_to_detection(), b.events_to_detection());
}

// --- counting specs ---

TEST(Counting, CounterAutomatonShape) {
  const CountingPredicate spec{std::nullopt, 3};
  const CompileResult result = compile_counting(spec);
  ASSERT_TRUE(result.compiled());
  const MonitorAutomaton& a = *result.automaton;
  EXPECT_EQ(a.scope, MonitorAutomaton::Scope::kCounter);
  EXPECT_EQ(a.n_states, 5u);  // 0..3 and the absorbing overflow state
  EXPECT_EQ(a.symbols.n_symbols(), 2u);
  EXPECT_EQ(a.dead_states, 0u);
}

TEST(Counting, MonitorMatchesBruteForceInFlightCount) {
  Rng rng(613);
  for (int trial = 0; trial < 60; ++trial) {
    const Feed feed = random_feed(rng, 3, 8, {0, 1});
    const CountingPredicate spec{
        trial % 2 == 0 ? std::optional<int>{} : std::optional<int>{1},
        rng.below(4)};
    CountingMonitor monitor(feed.messages, spec);
    std::size_t in_flight = 0;
    std::size_t max_in_flight = 0;
    std::optional<std::uint64_t> first_over;
    std::uint64_t events = 0;
    for (const auto& [process, event, time] : feed.events) {
      ++events;
      const Message& m = feed.messages[event.msg];
      const bool matches = !spec.color.has_value() || m.color == *spec.color;
      if (matches) {
        if (event.kind == EventKind::kSend) {
          ++in_flight;
        } else {
          --in_flight;
        }
        max_in_flight = std::max(max_in_flight, in_flight);
        if (in_flight > spec.limit && !first_over.has_value()) {
          first_over = events;
        }
      }
      monitor.on_event(process, event, time);
    }
    EXPECT_EQ(monitor.violated(), max_in_flight > spec.limit);
    if (first_over.has_value()) {
      EXPECT_EQ(monitor.events_to_detection(), *first_over);
    }
    // The online counter observes one linearization, so firing implies
    // the offline width oracle fires on the same run.
    if (monitor.violated()) {
      EXPECT_TRUE(exceeds_concurrency(feed.to_run(), spec));
    }
  }
}

TEST(Counting, OfflineWidthMatchesBruteForceAntichain) {
  Rng rng(307);
  for (int trial = 0; trial < 40; ++trial) {
    const Feed feed = random_feed(rng, 3, 7, {0, 1});
    const UserRun run = feed.to_run();
    for (const std::optional<int> color :
         {std::optional<int>{}, std::optional<int>{1}}) {
      // Brute force: the largest subset of matching messages that is
      // pairwise overlap-compatible (no x.r |> y.s either way).
      std::vector<MessageId> pool;
      for (MessageId m = 0; m < run.message_count(); ++m) {
        if (!color.has_value() || run.color_of(m) == *color) {
          pool.push_back(m);
        }
      }
      std::size_t best = 0;
      for (std::size_t mask = 0; mask < (1u << pool.size()); ++mask) {
        bool ok = true;
        for (std::size_t i = 0; i < pool.size() && ok; ++i) {
          for (std::size_t j = 0; j < pool.size() && ok; ++j) {
            if (i == j || !((mask >> i) & 1u) || !((mask >> j) & 1u)) {
              continue;
            }
            if (run.before(pool[i], R, pool[j], S)) ok = false;
          }
        }
        if (ok) {
          best = std::max(
              best, static_cast<std::size_t>(std::popcount(mask)));
        }
      }
      EXPECT_EQ(max_concurrency_width(run, color), best);
    }
  }
}

TEST(Counting, CompositeSatisfiesChecksWidth) {
  // Two overlapping sends on different channels: width 2.
  const std::vector<Message> ms = {{0, 0, 1, 0}, {1, 2, 1, 0}};
  const auto run = UserRun::from_schedules(
      ms, {{{0, S}}, {{0, R}, {1, R}}, {{1, S}}});
  ASSERT_TRUE(run.has_value());
  CompositeSpec tight;
  tight.counting.push_back(CountingPredicate{std::nullopt, 1});
  CompositeSpec loose;
  loose.counting.push_back(CountingPredicate{std::nullopt, 2});
  EXPECT_EQ(max_concurrency_width(*run, std::nullopt), 2u);
  EXPECT_FALSE(satisfies(*run, tight));
  EXPECT_TRUE(satisfies(*run, loose));
}

}  // namespace
}  // namespace msgorder
