// Lemma 4: contraction of cycles to canonical forms, preserving order
// and implication.
#include <gtest/gtest.h>

#include "src/checker/violation.hpp"
#include "src/poset/run_generator.hpp"
#include "src/spec/classify.hpp"
#include "src/spec/library.hpp"
#include "src/spec/weaken.hpp"

namespace msgorder {
namespace {

constexpr UserEventKind S = UserEventKind::kSend;
constexpr UserEventKind R = UserEventKind::kDeliver;

ForbiddenPredicate witness_cycle(const ForbiddenPredicate& p) {
  const PredicateGraph g(p);
  const auto walk = g.min_order_closed_walk();
  EXPECT_TRUE(walk.has_value());
  return cycle_predicate(g, walk->edges);
}

std::size_t order_of(const ForbiddenPredicate& p) {
  const auto c = classify(p);
  EXPECT_TRUE(c.min_order.has_value());
  return *c.min_order;
}

TEST(Weaken, TwoVertexCycleIsAlreadyCanonical) {
  const WeakeningTrace trace =
      weaken_to_canonical(witness_cycle(causal_ordering()));
  EXPECT_EQ(trace.steps.size(), 1u);
  EXPECT_EQ(trace.canonical().arity, 2u);
}

TEST(Weaken, KWeakerContractsToCausalShape) {
  // The k-weaker chain (order 1, k+2 vertices) must contract to a
  // 2-vertex order-1 cycle: one of the Lemma 3.2 forms.
  for (std::size_t k = 1; k <= 4; ++k) {
    const WeakeningTrace trace =
        weaken_to_canonical(witness_cycle(k_weaker_causal(k)));
    const ForbiddenPredicate& canon = trace.canonical();
    EXPECT_EQ(canon.arity, 2u) << "k=" << k;
    EXPECT_EQ(order_of(canon), 1u);
    // Exactly k steps removed the k surplus vertices.
    EXPECT_EQ(trace.steps.size(), k + 1);
  }
}

TEST(Weaken, CrownIsAllBetaAndStaysIntact) {
  for (std::size_t k = 3; k <= 5; ++k) {
    const WeakeningTrace trace =
        weaken_to_canonical(witness_cycle(sync_crown(k)));
    EXPECT_EQ(trace.steps.size(), 1u);
    EXPECT_EQ(trace.canonical().arity, k);
    EXPECT_EQ(order_of(trace.canonical()), k);
  }
}

TEST(Weaken, OrderPreservedAtEveryStep) {
  const ForbiddenPredicate chains[] = {
      k_weaker_causal(3),
      make_predicate(4, {{0, S, 1, S}, {1, R, 2, R}, {2, R, 3, S},
                         {3, R, 0, R}}),
  };
  for (const ForbiddenPredicate& p : chains) {
    const ForbiddenPredicate cycle = witness_cycle(p);
    const std::size_t order = order_of(cycle);
    const WeakeningTrace trace = weaken_to_canonical(cycle);
    for (const ForbiddenPredicate& step : trace.steps) {
      EXPECT_EQ(order_of(step), order) << step.to_string();
    }
  }
}

TEST(Weaken, EachStepRemovesOneVertex) {
  const WeakeningTrace trace =
      weaken_to_canonical(witness_cycle(k_weaker_causal(3)));
  for (std::size_t i = 0; i + 1 < trace.steps.size(); ++i) {
    EXPECT_EQ(trace.steps[i].arity, trace.steps[i + 1].arity + 1);
  }
}

TEST(Weaken, ImplicationHoldsOnRandomRuns) {
  // B => B': every run violating the weakened predicate... rather,
  // whenever the original predicate holds in a run, each weakened step
  // also holds (satisfies() is the complement).
  Rng rng(4242);
  const ForbiddenPredicate original = k_weaker_causal(2);
  const WeakeningTrace trace =
      weaken_to_canonical(witness_cycle(original));
  int violated_originals = 0;
  for (int trial = 0; trial < 300; ++trial) {
    RandomRunOptions opts;
    opts.n_processes = 3;
    opts.n_messages = 6;
    opts.send_bias = 0.8;  // deep reorderings
    const UserRun run = random_scheduled_run(opts, rng);
    if (satisfies(run, trace.steps.front())) continue;
    ++violated_originals;
    for (const ForbiddenPredicate& step : trace.steps) {
      EXPECT_FALSE(satisfies(run, step))
          << "weakened step not implied: " << step.to_string();
    }
  }
  EXPECT_GT(violated_originals, 5);
}

TEST(CyclePredicate, ExtractsRingInOrder) {
  const PredicateGraph g(k_weaker_causal(1));
  const auto walk = g.min_order_closed_walk();
  ASSERT_TRUE(walk.has_value());
  const ForbiddenPredicate ring = cycle_predicate(g, walk->edges);
  ASSERT_EQ(ring.conjuncts.size(), 3u);
  for (std::size_t i = 0; i < ring.conjuncts.size(); ++i) {
    EXPECT_EQ(ring.conjuncts[i].rhs,
              ring.conjuncts[(i + 1) % ring.conjuncts.size()].lhs);
  }
}

TEST(Weaken, CanonicalOfOrderZeroIsLemma33Shape) {
  // An order-0 4-cycle contracts to one of the async canonical forms.
  const auto p = make_predicate(
      4, {{0, S, 1, S}, {1, S, 2, S}, {2, R, 3, R}, {3, R, 0, S}});
  const ForbiddenPredicate cycle = witness_cycle(p);
  EXPECT_EQ(order_of(cycle), 0u);
  const WeakeningTrace trace = weaken_to_canonical(cycle);
  EXPECT_EQ(trace.canonical().arity, 2u);
  EXPECT_EQ(order_of(trace.canonical()), 0u);
}

}  // namespace
}  // namespace msgorder
