// Chandy-Lamport snapshots over the simulator: consistent on FIFO
// channels, breakable without them — the operational justification for
// the FIFO ordering specification (paper Sections 1-2).
#include <gtest/gtest.h>

#include "src/apps/snapshot.hpp"
#include "src/sim/simulator.hpp"

namespace msgorder {
namespace {

struct SnapOutcome {
  bool completed = false;
  GlobalSnapshot snapshot;
};

SnapOutcome run_snapshot(bool fifo_markers, std::uint64_t seed,
                         std::size_t n_processes = 4,
                         std::size_t n_messages = 200,
                         double jitter = 4.0) {
  Rng rng(seed);
  WorkloadOptions wopts;
  wopts.n_processes = n_processes;
  wopts.n_messages = n_messages;
  wopts.mean_gap = 0.3;
  const Workload workload = random_workload(wopts, rng);
  SnapshotProtocol::Registry registry;
  SnapshotProtocol::Options options;
  options.fifo_markers = fifo_markers;
  SimOptions sopts;
  sopts.seed = seed * 31 + 7;
  sopts.network.jitter_mean = jitter;
  const SimResult result =
      simulate(workload, SnapshotProtocol::factory(options, &registry),
               n_processes, sopts);
  SnapOutcome outcome;
  outcome.completed = result.completed;
  outcome.snapshot = collect(registry);
  return outcome;
}

TEST(Snapshot, FifoMarkersAlwaysConsistent) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const SnapOutcome outcome = run_snapshot(true, seed);
    ASSERT_TRUE(outcome.completed) << "seed " << seed;
    EXPECT_TRUE(outcome.snapshot.complete()) << "seed " << seed;
    EXPECT_TRUE(outcome.snapshot.consistent()) << "seed " << seed;
    EXPECT_TRUE(outcome.snapshot.channel_states_account())
        << "seed " << seed << "\n"
        << outcome.snapshot.to_string();
  }
}

TEST(Snapshot, AsyncMarkersEventuallyInconsistent) {
  // Without FIFO, markers race user messages: across seeds under heavy
  // jitter, some snapshot must be broken (inconsistent cut or
  // unaccounted channel state).
  bool broken = false;
  for (std::uint64_t seed = 1; seed <= 30 && !broken; ++seed) {
    const SnapOutcome outcome = run_snapshot(false, seed);
    if (!outcome.completed) continue;
    broken = !outcome.snapshot.consistent() ||
             !outcome.snapshot.channel_states_account();
  }
  EXPECT_TRUE(broken);
}

TEST(Snapshot, ScalesWithProcessCount) {
  for (std::size_t n : {2u, 3u, 6u, 9u}) {
    const SnapOutcome outcome = run_snapshot(true, 5, n, 60 * n);
    ASSERT_TRUE(outcome.completed) << n;
    EXPECT_TRUE(outcome.snapshot.complete()) << n;
    EXPECT_TRUE(outcome.snapshot.consistent()) << n;
  }
}

TEST(Snapshot, QuietNetworkGivesEmptyChannels) {
  // With no jitter and sparse traffic, channels are empty at the cut.
  const SnapOutcome outcome =
      run_snapshot(true, 3, 3, 40, /*jitter=*/0.0);
  ASSERT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.snapshot.consistent());
  EXPECT_TRUE(outcome.snapshot.channel_states_account());
}

TEST(Snapshot, ChannelStateMessagesAreDistinct) {
  const SnapOutcome outcome = run_snapshot(true, 11);
  ASSERT_TRUE(outcome.completed);
  std::set<MessageId> seen;
  for (const ProcessSnapshot& ps : outcome.snapshot.processes) {
    for (const auto& [from, msgs] : ps.channel_state) {
      for (MessageId m : msgs) {
        EXPECT_TRUE(seen.insert(m).second) << "message recorded twice";
      }
    }
  }
}

TEST(Snapshot, IncompleteWithoutTrigger) {
  // If process 0 never reaches its trigger send count, no snapshot.
  Rng rng(13);
  const Workload workload = scripted_workload({{0.0, 1, 2, 0}});
  SnapshotProtocol::Registry registry;
  SnapshotProtocol::Options options;
  options.trigger_send = 5;
  const SimResult result = simulate(
      workload, SnapshotProtocol::factory(options, &registry), 3);
  ASSERT_TRUE(result.completed);
  EXPECT_FALSE(collect(registry).complete());
}

TEST(Snapshot, UserTrafficStillDeliveredEverywhere) {
  const SnapOutcome outcome = run_snapshot(true, 17);
  EXPECT_TRUE(outcome.completed);  // all messages delivered despite markers
}

}  // namespace
}  // namespace msgorder
