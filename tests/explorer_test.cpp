// The inductive X_P semantics (Section 3.2), Lemma 2's containments and
// the knowledge-conformance definitions, model-checked on small message
// universes.
#include <gtest/gtest.h>

#include "src/checker/limit_sets.hpp"
#include "src/poset/lift.hpp"
#include "src/poset/run_generator.hpp"
#include "src/semantics/explorer.hpp"
#include "src/semantics/limit_protocols.hpp"

namespace msgorder {
namespace {

std::vector<Message> crossing_universe() {
  return {{0, 0, 1, 0}, {1, 1, 0, 0}};
}

std::vector<Message> channel_universe() {
  return {{0, 0, 1, 0}, {1, 0, 1, 0}};
}

TEST(Explorer, TaglessReachesEverything) {
  const TaglessAll protocol;
  const auto result = explore(protocol, crossing_universe(), 2);
  EXPECT_TRUE(result.liveness_violations.empty());
  // Every complete scheduled run over the universe appears among the
  // user views (X_P projects onto all of X_async for this universe).
  const auto all_runs = enumerate_scheduled_runs(crossing_universe());
  std::size_t full_views = 0;
  for (const UserRun& v : result.complete_user_views) {
    if (v.message_count() == 2) ++full_views;
  }
  EXPECT_EQ(full_views, all_runs.size());
}

TEST(Explorer, TaglessContainsAllLiftedRuns) {
  // Lemma 2.3: X_tl subset X_P.  Lifted complete runs (stars immediate)
  // are exactly the X_tl elements with everything delivered.
  const TaglessAll protocol;
  const auto result = explore(protocol, channel_universe(), 2);
  for (const std::string& key :
       lifted_keys(enumerate_scheduled_runs(channel_universe()))) {
    EXPECT_TRUE(result.reachable_keys.count(key) > 0) << key;
  }
}

TEST(Explorer, TaggedCausalSafetyAndLiveness) {
  const TaggedCausal protocol;
  for (const auto& universe : {crossing_universe(), channel_universe()}) {
    const auto result = explore(protocol, universe, 2);
    EXPECT_TRUE(result.liveness_violations.empty());
    for (const UserRun& view : result.complete_user_views) {
      EXPECT_TRUE(in_causal(view));
    }
  }
}

TEST(Explorer, TaggedCausalReachesExactlyCausalViews) {
  // Theorem 1.2 on a small universe: the complete user views of the
  // abstract causal protocol are exactly the causally ordered runs.
  const TaggedCausal protocol;
  const auto result = explore(protocol, channel_universe(), 2);
  std::set<std::string> reached;
  for (const UserRun& v : result.complete_user_views) {
    if (v.message_count() == 2) reached.insert(v.to_string());
  }
  std::set<std::string> causal;
  for (const UserRun& run : enumerate_scheduled_runs(channel_universe())) {
    if (in_causal(run)) causal.insert(run.to_string());
  }
  EXPECT_EQ(reached, causal);
}

TEST(Explorer, TaggedCausalContainsLiftedCausalRuns) {
  // Lemma 2.2 via Theorem 1's construction: every lifted causally
  // ordered run is reachable under the tagged protocol.
  const TaggedCausal protocol;
  const auto result = explore(protocol, crossing_universe(), 2);
  for (const UserRun& run : enumerate_scheduled_runs(crossing_universe())) {
    if (!in_causal(run)) continue;
    EXPECT_TRUE(result.reachable_keys.count(lift(run).key()) > 0)
        << run.to_string();
  }
}

TEST(Explorer, SerializerSafetyAndLiveness) {
  const GeneralSerializer protocol;
  for (const auto& universe : {crossing_universe(), channel_universe()}) {
    const auto result = explore(protocol, universe, 2);
    EXPECT_TRUE(result.liveness_violations.empty());
    for (const UserRun& view : result.complete_user_views) {
      EXPECT_TRUE(in_sync(view)) << view.to_string();
    }
  }
}

TEST(Explorer, SerializerReachesExactlySyncViews) {
  const GeneralSerializer protocol;
  const auto result = explore(protocol, crossing_universe(), 2);
  std::set<std::string> reached;
  for (const UserRun& v : result.complete_user_views) {
    if (v.message_count() == 2) reached.insert(v.to_string());
  }
  std::set<std::string> sync;
  for (const UserRun& run : enumerate_scheduled_runs(crossing_universe())) {
    if (in_sync(run)) sync.insert(run.to_string());
  }
  EXPECT_EQ(reached, sync);
}

TEST(Explorer, StrictContainmentOfReachableSets) {
  // X_P(serializer) subset X_P(causal) subset X_P(tagless), with each
  // inclusion strict on a universe that can violate the stronger spec:
  // on the crossing pair only synchrony can be violated (opposite
  // directions cannot break causal ordering), on the channel pair the
  // causal spec bites.
  for (const auto& universe : {crossing_universe(), channel_universe()}) {
    const auto sync_r = explore(GeneralSerializer(), universe, 2);
    const auto co_r = explore(TaggedCausal(), universe, 2);
    const auto all_r = explore(TaglessAll(), universe, 2);
    for (const std::string& key : sync_r.reachable_keys) {
      EXPECT_TRUE(co_r.reachable_keys.count(key) > 0);
    }
    for (const std::string& key : co_r.reachable_keys) {
      EXPECT_TRUE(all_r.reachable_keys.count(key) > 0);
    }
    EXPECT_LT(sync_r.reachable_keys.size(), co_r.reachable_keys.size());
  }
  const auto co_channel = explore(TaggedCausal(), channel_universe(), 2);
  const auto all_channel = explore(TaglessAll(), channel_universe(), 2);
  EXPECT_LT(co_channel.reachable_keys.size(),
            all_channel.reachable_keys.size());
}

TEST(Explorer, ConformanceHoldsForDeclaredClasses) {
  ExploreOptions options;
  options.check_conformance = true;
  const auto universe = crossing_universe();
  EXPECT_EQ(explore(TaglessAll(), universe, 2, options)
                .conformance_violation,
            "");
  EXPECT_EQ(explore(TaggedCausal(), universe, 2, options)
                .conformance_violation,
            "");
}

TEST(Explorer, SerializerIsNotTagless) {
  // The serializer decides on concurrent knowledge; pretending it is
  // tagless must be caught by the conformance check.
  class PretendTagless final : public EnabledSetProtocol {
   public:
    std::vector<SystemEvent> enabled_controllables(
        const SystemRun& run, ProcessId i) const override {
      return impl_.enabled_controllables(run, i);
    }
    KnowledgeClass knowledge_class() const override {
      return KnowledgeClass::kTagless;
    }
    std::string name() const override { return "pretend-tagless"; }

   private:
    GeneralSerializer impl_;
  };
  ExploreOptions options;
  options.check_conformance = true;
  const auto result =
      explore(PretendTagless(), crossing_universe(), 2, options);
  EXPECT_NE(result.conformance_violation, "");
}

TEST(Explorer, SerializerIsNotTaggedEither) {
  // Theorem 1's separation: the serializer's decisions cannot be a
  // function of the causal past alone.
  class PretendTagged final : public EnabledSetProtocol {
   public:
    std::vector<SystemEvent> enabled_controllables(
        const SystemRun& run, ProcessId i) const override {
      return impl_.enabled_controllables(run, i);
    }
    KnowledgeClass knowledge_class() const override {
      return KnowledgeClass::kTagged;
    }
    std::string name() const override { return "pretend-tagged"; }

   private:
    GeneralSerializer impl_;
  };
  ExploreOptions options;
  options.check_conformance = true;
  const auto result =
      explore(PretendTagged(), crossing_universe(), 2, options);
  EXPECT_NE(result.conformance_violation, "");
}

TEST(Explorer, ThreeProcessRingUniverse) {
  const std::vector<Message> ring = {
      {0, 0, 1, 0}, {1, 1, 2, 0}, {2, 2, 0, 0}};
  const auto result = explore(TaggedCausal(), ring, 3);
  EXPECT_TRUE(result.liveness_violations.empty());
  for (const UserRun& view : result.complete_user_views) {
    EXPECT_TRUE(in_causal(view));
  }
}

TEST(Explorer, SingleStepModeIsSubset) {
  ExploreOptions simultaneous;
  ExploreOptions single;
  single.simultaneous_steps = false;
  const auto sim = explore(TaglessAll(), crossing_universe(), 2,
                           simultaneous);
  const auto seq = explore(TaglessAll(), crossing_universe(), 2, single);
  for (const std::string& key : seq.reachable_keys) {
    EXPECT_TRUE(sim.reachable_keys.count(key) > 0);
  }
}

}  // namespace
}  // namespace msgorder
