#include <gtest/gtest.h>

#include <set>

#include "src/checker/limit_sets.hpp"
#include "src/poset/run_generator.hpp"

namespace msgorder {
namespace {

TEST(RandomScheduledRun, ProducesValidCompleteRuns) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    RandomRunOptions opts;
    opts.n_processes = 2 + rng.below(4);
    opts.n_messages = rng.below(10);
    const UserRun run = random_scheduled_run(opts, rng);
    EXPECT_EQ(run.message_count(), opts.n_messages);
    EXPECT_TRUE(run.has_schedules() || opts.n_messages == 0);
    EXPECT_TRUE(in_async(run));
    for (const Message& m : run.messages()) {
      EXPECT_NE(m.src, m.dst);
      EXPECT_LT(m.src, opts.n_processes);
      EXPECT_LT(m.dst, opts.n_processes);
    }
  }
}

TEST(RandomScheduledRun, Deterministic) {
  RandomRunOptions opts;
  Rng a(42);
  Rng b(42);
  const UserRun ra = random_scheduled_run(opts, a);
  const UserRun rb = random_scheduled_run(opts, b);
  EXPECT_EQ(ra.schedules(), rb.schedules());
}

TEST(RandomScheduledRun, RedFractionProducesColors) {
  RandomRunOptions opts;
  opts.n_messages = 200;
  opts.red_fraction = 0.5;
  Rng rng(5);
  const UserRun run = random_scheduled_run(opts, rng);
  std::size_t red = 0;
  for (const Message& m : run.messages()) red += (m.color == 1);
  EXPECT_GT(red, 50u);
  EXPECT_LT(red, 150u);
}

TEST(RandomScheduledRun, SendBiasShapesOrdering) {
  // With bias ~0, each message is delivered before the next is sent, so
  // every run is logically synchronous.
  RandomRunOptions opts;
  opts.n_messages = 10;
  opts.send_bias = 0.0;
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    EXPECT_TRUE(in_sync(random_scheduled_run(opts, rng)));
  }
}

TEST(RandomAbstractRun, ValidPosets) {
  Rng rng(11);
  for (double density : {0.0, 0.2, 0.8}) {
    for (int trial = 0; trial < 30; ++trial) {
      const UserRun run = random_abstract_run(5, density, rng);
      EXPECT_TRUE(in_async(run));
      EXPECT_FALSE(run.has_schedules());
      for (MessageId m = 0; m < run.message_count(); ++m) {
        EXPECT_TRUE(run.before(m, UserEventKind::kSend, m,
                               UserEventKind::kDeliver));
      }
    }
  }
}

TEST(RandomAbstractRun, DensityOneIsTotalOrder) {
  Rng rng(13);
  const UserRun run = random_abstract_run(4, 1.0, rng);
  // Every pair of distinct events must be related.
  for (std::size_t a = 0; a < run.event_count(); ++a) {
    for (std::size_t b = a + 1; b < run.event_count(); ++b) {
      EXPECT_FALSE(run.concurrent(UserRun::event_of_index(a),
                                  UserRun::event_of_index(b)));
    }
  }
}

TEST(EnumerateScheduledRuns, SingleMessageHasOneRun) {
  const auto runs = enumerate_scheduled_runs({{0, 0, 1, 0}});
  EXPECT_EQ(runs.size(), 1u);
}

TEST(EnumerateScheduledRuns, TwoMessagesSameChannel) {
  // Sends are on one process line (2 orders) and deliveries on another
  // (2 orders): 4 distinct decomposed runs.
  const auto runs =
      enumerate_scheduled_runs({{0, 0, 1, 0}, {1, 0, 1, 0}});
  EXPECT_EQ(runs.size(), 4u);
}

TEST(EnumerateScheduledRuns, CrossingPairCounts) {
  // Two messages in opposite directions between P0 and P1: each process
  // line interleaves one send and one delivery => 2 x 2 orders, but the
  // doubly-crossed one (r before s on both lines) is not a run: 3 remain.
  const auto runs =
      enumerate_scheduled_runs({{0, 0, 1, 0}, {1, 1, 0, 0}});
  EXPECT_EQ(runs.size(), 3u);
}

TEST(EnumerateScheduledRuns, AllValidAndDistinct) {
  const auto runs = enumerate_scheduled_runs(
      {{0, 0, 1, 0}, {1, 1, 2, 0}, {2, 2, 0, 0}});
  std::set<std::string> keys;
  for (const UserRun& run : runs) {
    EXPECT_TRUE(in_async(run));
    keys.insert(run.to_string());
  }
  EXPECT_EQ(keys.size(), runs.size());
  // Each process line interleaves one send and one delivery (2^3 = 8
  // combinations); only the fully crossed one is causally cyclic.
  EXPECT_EQ(runs.size(), 7u);
}

TEST(EnumerateScheduledRuns, ContainsBothOrderings) {
  const auto runs =
      enumerate_scheduled_runs({{0, 0, 1, 0}, {1, 0, 1, 0}});
  bool in_order = false;
  bool out_of_order = false;
  for (const UserRun& run : runs) {
    if (run.before(0, UserEventKind::kDeliver, 1, UserEventKind::kDeliver)) {
      in_order = true;
    }
    if (run.before(1, UserEventKind::kDeliver, 0, UserEventKind::kDeliver)) {
      out_of_order = true;
    }
  }
  EXPECT_TRUE(in_order);
  EXPECT_TRUE(out_of_order);
}

}  // namespace
}  // namespace msgorder
