#include <gtest/gtest.h>

#include <algorithm>

#include "src/poset/poset.hpp"

namespace msgorder {
namespace {

TEST(Poset, EmptyIsPartialOrder) {
  Poset p(4);
  p.close();
  EXPECT_TRUE(p.is_partial_order());
  EXPECT_EQ(p.pair_count(), 0u);
}

TEST(Poset, PrecedesAfterClosure) {
  Poset p(4);
  p.add_edge(0, 1);
  p.add_edge(1, 2);
  p.close();
  EXPECT_TRUE(p.precedes(0, 2));
  EXPECT_FALSE(p.precedes(2, 0));
  EXPECT_TRUE(p.concurrent(0, 3));
  EXPECT_FALSE(p.concurrent(0, 0));
}

TEST(Poset, CycleIsNotPartialOrder) {
  Poset p(3);
  p.add_edge(0, 1);
  p.add_edge(1, 0);
  p.close();
  EXPECT_FALSE(p.is_partial_order());
}

TEST(Poset, TopologicalOrderRespectsEdges) {
  Poset p(5);
  p.add_edge(0, 2);
  p.add_edge(1, 2);
  p.add_edge(2, 3);
  p.add_edge(3, 4);
  p.close();
  const auto order = p.topological_order();
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(5);
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[2]);
  EXPECT_LT(pos[2], pos[3]);
  EXPECT_LT(pos[3], pos[4]);
}

TEST(Poset, TopologicalOrderFailsOnCycle) {
  Poset p(3);
  p.add_edge(0, 1);
  p.add_edge(1, 2);
  p.add_edge(2, 0);
  p.close();
  EXPECT_FALSE(p.topological_order().has_value());
}

TEST(Poset, PairsMatchPrecedes) {
  Poset p(4);
  p.add_edge(0, 1);
  p.add_edge(1, 3);
  p.close();
  const auto pairs = p.pairs();
  EXPECT_EQ(pairs.size(), p.pair_count());
  for (const auto& [u, v] : pairs) {
    EXPECT_TRUE(p.precedes(u, v));
  }
  EXPECT_NE(std::find(pairs.begin(), pairs.end(),
                      std::make_pair<std::size_t, std::size_t>(0, 3)),
            pairs.end());
}

TEST(Poset, Equality) {
  Poset a(3);
  a.add_edge(0, 1);
  a.close();
  Poset b(3);
  b.add_edge(0, 1);
  b.close();
  EXPECT_EQ(a, b);
  Poset c(3);
  c.close();
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace msgorder
