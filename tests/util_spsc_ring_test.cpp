// Unit tests for the SPSC ring (ISSUE 6 satellite).  The two-thread
// stress cases double as the TSan coverage required by the CI
// -DSANITIZE=thread job (tests/CMakeLists globs this file into ctest).
#include "src/util/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

namespace msgorder {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRingTest, FifoOrderSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  int out = -1;
  EXPECT_FALSE(ring.try_push(99));  // full
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));  // empty
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, FailedPushLeavesValueIntact) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(1)));
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(2)));
  auto extra = std::make_unique<int>(3);
  EXPECT_FALSE(ring.try_push(std::move(extra)));
  ASSERT_NE(extra, nullptr);  // not consumed by the failed push
  EXPECT_EQ(*extra, 3);
}

TEST(SpscRingTest, MoveOnlyPayloads) {
  SpscRing<std::unique_ptr<int>> ring(4);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(SpscRingTest, WrapAroundReusesSlots) {
  SpscRing<int> ring(4);
  int out = 0;
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(ring.try_push(int(round)));
    ASSERT_TRUE(ring.try_push(int(round + 1000)));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, round);
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, round + 1000);
  }
}

// Two-thread stress: every pushed value arrives exactly once, in order.
// Run under -DSANITIZE=thread this validates the acquire/release pairs.
TEST(SpscRingTest, ProducerConsumerStress) {
  constexpr std::uint64_t kCount = 50'000;
  SpscRing<std::uint64_t> ring(64);  // small: forces frequent full/empty
  std::uint64_t sum = 0;
  std::uint64_t received = 0;
  bool in_order = true;
  std::thread consumer([&] {
    std::uint64_t expected = 0;
    std::uint64_t value = 0;
    while (received < kCount) {
      if (ring.try_pop(value)) {
        in_order = in_order && (value == expected);
        ++expected;
        sum += value;
        ++received;
      } else {
        std::this_thread::yield();  // single-core machines
      }
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!ring.try_push(std::uint64_t(i))) {
      std::this_thread::yield();
    }
  }
  consumer.join();
  EXPECT_TRUE(in_order);
  EXPECT_EQ(received, kCount);
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

// Stress with a payload that has real move semantics, so TSan also sees
// the slot memory itself cross threads.
TEST(SpscRingTest, ProducerConsumerStressMoveOnly) {
  constexpr int kCount = 10'000;
  SpscRing<std::unique_ptr<int>> ring(32);
  long long sum = 0;
  std::thread consumer([&] {
    int received = 0;
    std::unique_ptr<int> value;
    while (received < kCount) {
      if (ring.try_pop(value)) {
        sum += *value;
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kCount; ++i) {
    auto payload = std::make_unique<int>(i);
    while (!ring.try_push(std::move(payload))) {
      std::this_thread::yield();
    }
  }
  consumer.join();
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

}  // namespace
}  // namespace msgorder
