// Lemma 3: the canonical predicates and their specification sets, checked
// semantically against enumerated and random runs.
#include <gtest/gtest.h>

#include "src/checker/limit_sets.hpp"
#include "src/checker/violation.hpp"
#include "src/poset/run_generator.hpp"
#include "src/spec/library.hpp"

namespace msgorder {
namespace {

TEST(Library, ZooIsNonTrivialAndNamed) {
  const auto zoo = spec_zoo();
  EXPECT_GE(zoo.size(), 20u);
  for (const NamedSpec& s : zoo) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.paper_ref.empty());
    EXPECT_GT(s.predicate.arity, 0u);
  }
}

// Lemma 3.2: the three causal predicates define the same specification
// set X_co, and it matches the direct in_causal() checker.
TEST(Library, CausalVariantsAgreeWithCheckerOnEnumeratedRuns) {
  const std::vector<Message> ms = {{0, 0, 1, 0}, {1, 1, 0, 0}, {2, 0, 1, 0}};
  for (const UserRun& run : enumerate_scheduled_runs(ms)) {
    const bool co = in_causal(run);
    EXPECT_EQ(satisfies(run, causal_ordering()), co);
    EXPECT_EQ(satisfies(run, causal_ordering_b1()), co);
    EXPECT_EQ(satisfies(run, causal_ordering_b3()), co);
  }
}

TEST(Library, CausalVariantsAgreeOnRandomRuns) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    RandomRunOptions opts;
    opts.n_processes = 4;
    opts.n_messages = 7;
    opts.send_bias = 0.7;
    const UserRun run = random_scheduled_run(opts, rng);
    const bool b2 = satisfies(run, causal_ordering());
    EXPECT_EQ(satisfies(run, causal_ordering_b1()), b2);
    EXPECT_EQ(satisfies(run, causal_ordering_b3()), b2);
    EXPECT_EQ(in_causal(run), b2);
  }
}

// Lemma 3.3: the async predicates are never satisfiable in a partial
// order, so every run satisfies the specification.
TEST(Library, AsyncZooSatisfiedByEveryRun) {
  Rng rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    RandomRunOptions opts;
    opts.n_processes = 3;
    opts.n_messages = 6;
    const UserRun run = random_scheduled_run(opts, rng);
    for (const ForbiddenPredicate& p : async_zoo()) {
      EXPECT_TRUE(satisfies(run, p)) << p.to_string();
    }
  }
  // Including abstract (non-realizable) posets.
  for (int trial = 0; trial < 100; ++trial) {
    const UserRun run = random_abstract_run(5, 0.4, rng);
    for (const ForbiddenPredicate& p : async_zoo()) {
      EXPECT_TRUE(satisfies(run, p)) << p.to_string();
    }
  }
}

// Lemma 3.1 (k = 2): the 2-crown predicate is violated exactly by runs
// outside X_sync... more precisely X_sync satisfies every crown.
TEST(Library, SyncRunsSatisfyAllCrowns) {
  Rng rng(41);
  int sync_runs = 0;
  for (int trial = 0; trial < 300; ++trial) {
    RandomRunOptions opts;
    opts.n_processes = 3;
    opts.n_messages = 5;
    opts.send_bias = 0.3;
    const UserRun run = random_scheduled_run(opts, rng);
    if (!in_sync(run)) continue;
    ++sync_runs;
    for (std::size_t k = 2; k <= 4; ++k) {
      EXPECT_TRUE(satisfies(run, sync_crown(k)));
    }
  }
  EXPECT_GT(sync_runs, 20);
}

TEST(Library, NonSyncRunViolatesSomeCrown) {
  // The canonical crossing pair violates the 2-crown.
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 1, 0, 0}};
  const auto run = UserRun::from_schedules(
      ms, {{{0, UserEventKind::kSend}, {1, UserEventKind::kDeliver}},
           {{1, UserEventKind::kSend}, {0, UserEventKind::kDeliver}}});
  ASSERT_TRUE(run.has_value());
  EXPECT_FALSE(in_sync(*run));
  EXPECT_FALSE(satisfies(*run, sync_crown(2)));
}

TEST(Library, FifoIgnoresOtherChannels) {
  // Out-of-order deliveries on *different* channels do not violate FIFO.
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 0, 2, 0}};
  const auto run = UserRun::from_schedules(
      ms, {{{0, UserEventKind::kSend}, {1, UserEventKind::kSend}},
           {{0, UserEventKind::kDeliver}},
           {{1, UserEventKind::kDeliver}}});
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(satisfies(*run, fifo()));
}

TEST(Library, FifoViolatedBySameChannelOvertaking) {
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 0, 1, 0}};
  const auto run = UserRun::from_schedules(
      ms, {{{0, UserEventKind::kSend}, {1, UserEventKind::kSend}},
           {{1, UserEventKind::kDeliver}, {0, UserEventKind::kDeliver}}});
  ASSERT_TRUE(run.has_value());
  EXPECT_FALSE(satisfies(*run, fifo()));
  // But plain causal ordering is also violated here (same processes);
  // global flush with no red message is fine:
  EXPECT_TRUE(satisfies(*run, global_forward_flush()));
}

TEST(Library, ForwardFlushOnlyConstrainsRedMessages) {
  // Message 1 is red and overtakes message 0: forbidden.
  std::vector<Message> red = {{0, 0, 1, 0}, {1, 0, 1, 1}};
  const auto run1 = UserRun::from_schedules(
      red, {{{0, UserEventKind::kSend}, {1, UserEventKind::kSend}},
            {{1, UserEventKind::kDeliver}, {0, UserEventKind::kDeliver}}});
  ASSERT_TRUE(run1.has_value());
  EXPECT_FALSE(satisfies(*run1, local_forward_flush()));
  EXPECT_FALSE(satisfies(*run1, global_forward_flush()));

  // Message 0 red, ordinary message 1 overtakes it: forward flush does
  // not care (backward flush does).
  std::vector<Message> red0 = {{0, 0, 1, 1}, {1, 0, 1, 0}};
  const auto run2 = UserRun::from_schedules(
      red0, {{{0, UserEventKind::kSend}, {1, UserEventKind::kSend}},
             {{1, UserEventKind::kDeliver}, {0, UserEventKind::kDeliver}}});
  ASSERT_TRUE(run2.has_value());
  EXPECT_TRUE(satisfies(*run2, local_forward_flush()));
  EXPECT_FALSE(satisfies(*run2, local_backward_flush()));
  EXPECT_FALSE(satisfies(*run2, two_way_flush()));
}

TEST(Library, KWeakerAllowsShallowOvertaking) {
  // Three messages on one channel, delivery order reversed for the last
  // pair only: 1-weaker causal tolerates chains of length <= 2.
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 0, 1, 0}, {2, 0, 1, 0}};
  const auto shallow = UserRun::from_schedules(
      ms, {{{0, UserEventKind::kSend},
            {1, UserEventKind::kSend},
            {2, UserEventKind::kSend}},
           {{1, UserEventKind::kDeliver},
            {0, UserEventKind::kDeliver},
            {2, UserEventKind::kDeliver}}});
  ASSERT_TRUE(shallow.has_value());
  EXPECT_FALSE(satisfies(*shallow, k_weaker_causal(0)));
  EXPECT_TRUE(satisfies(*shallow, k_weaker_causal(1)));

  // Deliver message 2 first: a 3-chain overtake, needs k >= 2.
  const auto deep = UserRun::from_schedules(
      ms, {{{0, UserEventKind::kSend},
            {1, UserEventKind::kSend},
            {2, UserEventKind::kSend}},
           {{2, UserEventKind::kDeliver},
            {0, UserEventKind::kDeliver},
            {1, UserEventKind::kDeliver}}});
  ASSERT_TRUE(deep.has_value());
  EXPECT_FALSE(satisfies(*deep, k_weaker_causal(1)));
  EXPECT_TRUE(satisfies(*deep, k_weaker_causal(2)));
}

TEST(Library, KWeakerNestsByK) {
  Rng rng(53);
  for (int trial = 0; trial < 150; ++trial) {
    RandomRunOptions opts;
    opts.n_processes = 3;
    opts.n_messages = 6;
    opts.send_bias = 0.8;
    const UserRun run = random_scheduled_run(opts, rng);
    for (std::size_t k = 0; k < 3; ++k) {
      // X_{k-weaker} grows with k: satisfying k implies satisfying k+1.
      if (satisfies(run, k_weaker_causal(k))) {
        EXPECT_TRUE(satisfies(run, k_weaker_causal(k + 1)));
      }
    }
    EXPECT_EQ(satisfies(run, k_weaker_causal(0)), in_causal(run));
  }
}

TEST(Library, HandoffSpecIgnoresNonHandoffCrossings) {
  // Two plain messages crossing: allowed by the handoff spec.
  std::vector<Message> plain = {{0, 0, 1, 0}, {1, 1, 0, 0}};
  const auto run = UserRun::from_schedules(
      plain, {{{0, UserEventKind::kSend}, {1, UserEventKind::kDeliver}},
              {{1, UserEventKind::kSend}, {0, UserEventKind::kDeliver}}});
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(satisfies(*run, mobile_handoff()));

  // Same crossing with a handoff-colored message: forbidden.
  std::vector<Message> handoff = {{0, 0, 1, 2}, {1, 1, 0, 0}};
  const auto run2 = UserRun::from_schedules(
      handoff, {{{0, UserEventKind::kSend}, {1, UserEventKind::kDeliver}},
                {{1, UserEventKind::kSend}, {0, UserEventKind::kDeliver}}});
  ASSERT_TRUE(run2.has_value());
  EXPECT_FALSE(satisfies(*run2, mobile_handoff()));
}

}  // namespace
}  // namespace msgorder
