// The online monitor: incremental causality, first-violation detection,
// and agreement with the offline oracle over simulations.
#include <gtest/gtest.h>

#include "src/checker/monitor.hpp"
#include "src/checker/violation.hpp"
#include "src/protocols/async.hpp"
#include "src/protocols/causal_rst.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/library.hpp"

namespace msgorder {
namespace {

constexpr EventKind S = EventKind::kSend;
constexpr EventKind R = EventKind::kReceive;
constexpr EventKind D = EventKind::kDeliver;
constexpr EventKind I = EventKind::kInvoke;

TEST(OnlineMonitor, DetectsCausalViolationAtTheCompletingEvent) {
  // Channel P0 -> P1, message 1 overtakes message 0.
  std::vector<Message> universe = {{0, 0, 1, 0}, {1, 0, 1, 0}};
  OnlineMonitor monitor(universe, causal_ordering());
  EXPECT_FALSE(monitor.on_event(0, {0, I}, 0));
  EXPECT_FALSE(monitor.on_event(0, {0, S}, 1));
  EXPECT_FALSE(monitor.on_event(0, {1, S}, 2));
  EXPECT_FALSE(monitor.on_event(1, {1, R}, 3));
  EXPECT_FALSE(monitor.on_event(1, {1, D}, 4));
  EXPECT_FALSE(monitor.violated());
  // Delivering message 0 now completes (x.s |> y.s) & (y.r |> x.r).
  EXPECT_TRUE(monitor.on_event(1, {0, D}, 5));
  ASSERT_TRUE(monitor.violated());
  EXPECT_EQ(monitor.first_violation_time(), 5);
  EXPECT_EQ((*monitor.first_witness())[0], 0u);
  EXPECT_EQ((*monitor.first_witness())[1], 1u);
}

TEST(OnlineMonitor, CleanRunNeverFires) {
  std::vector<Message> universe = {{0, 0, 1, 0}, {1, 0, 1, 0}};
  OnlineMonitor monitor(universe, causal_ordering());
  monitor.on_event(0, {0, S}, 0);
  monitor.on_event(0, {1, S}, 1);
  monitor.on_event(1, {0, D}, 2);
  monitor.on_event(1, {1, D}, 3);
  EXPECT_FALSE(monitor.violated());
  EXPECT_EQ(monitor.violation_count(), 0u);
}

TEST(OnlineMonitor, IncrementalCausalityMatchesDefinition) {
  std::vector<Message> universe = {{0, 0, 1, 0}, {1, 1, 2, 0}};
  OnlineMonitor monitor(universe, causal_ordering());
  monitor.on_event(0, {0, S}, 0);
  monitor.on_event(1, {0, D}, 1);
  monitor.on_event(1, {1, S}, 2);
  monitor.on_event(2, {1, D}, 3);
  using UK = UserEventKind;
  EXPECT_TRUE(monitor.before({0, UK::kSend}, {1, UK::kSend}));
  EXPECT_TRUE(monitor.before({0, UK::kSend}, {1, UK::kDeliver}));
  EXPECT_FALSE(monitor.before({1, UK::kSend}, {0, UK::kSend}));
  EXPECT_FALSE(monitor.before({1, UK::kDeliver}, {0, UK::kDeliver}));
}

TEST(OnlineMonitor, RespectsColorConstraints) {
  std::vector<Message> universe = {{0, 0, 1, 0}, {1, 0, 1, 0}};
  OnlineMonitor plain(universe, global_forward_flush(1));
  plain.on_event(0, {0, S}, 0);
  plain.on_event(0, {1, S}, 1);
  plain.on_event(1, {1, D}, 2);
  plain.on_event(1, {0, D}, 3);
  EXPECT_FALSE(plain.violated());  // nothing red

  std::vector<Message> red = {{0, 0, 1, 0}, {1, 0, 1, 1}};
  OnlineMonitor monitor(red, global_forward_flush(1));
  monitor.on_event(0, {0, S}, 0);
  monitor.on_event(0, {1, S}, 1);
  monitor.on_event(1, {1, D}, 2);
  EXPECT_TRUE(monitor.on_event(1, {0, D}, 3));
}

TEST(OnlineMonitor, AgreesWithOfflineOracleOnSimulations) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    WorkloadOptions wopts;
    wopts.n_processes = 3;
    wopts.n_messages = 60;
    wopts.mean_gap = 0.2;
    const Workload workload = random_workload(wopts, rng);
    auto monitor = std::make_shared<OnlineMonitor>(
        workload_universe(workload), causal_ordering());
    SimOptions sopts;
    sopts.seed = seed;
    sopts.network.jitter_mean = 3.0;
    sopts.observers.add(monitor_observer(monitor));
    const SimResult result =
        simulate(workload, AsyncProtocol::factory(), 3, sopts);
    ASSERT_TRUE(result.completed);
    const auto run = result.trace.to_user_run();
    ASSERT_TRUE(run.has_value());
    EXPECT_EQ(monitor->violated(),
              find_violation(*run, causal_ordering()).has_value())
        << "seed " << seed;
  }
}

TEST(OnlineMonitor, NeverFiresUnderCausalProtocol) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    WorkloadOptions wopts;
    wopts.n_processes = 4;
    wopts.n_messages = 80;
    wopts.mean_gap = 0.3;
    const Workload workload = random_workload(wopts, rng);
    auto monitor = std::make_shared<OnlineMonitor>(
        workload_universe(workload), causal_ordering());
    SimOptions sopts;
    sopts.seed = seed;
    sopts.network.jitter_mean = 3.0;
    sopts.observers.add(monitor_observer(monitor));
    const SimResult result =
        simulate(workload, CausalRstProtocol::factory(), 4, sopts);
    ASSERT_TRUE(result.completed);
    EXPECT_FALSE(monitor->violated()) << "seed " << seed;
  }
}

TEST(OnlineMonitor, FirstViolationTimeIsEarliest) {
  // Monitor a run with two separate violations; the recorded time is the
  // first one.
  std::vector<Message> universe = {
      {0, 0, 1, 0}, {1, 0, 1, 0}, {2, 0, 1, 0}, {3, 0, 1, 0}};
  OnlineMonitor monitor(universe, causal_ordering());
  monitor.on_event(0, {0, S}, 0);
  monitor.on_event(0, {1, S}, 1);
  monitor.on_event(0, {2, S}, 2);
  monitor.on_event(0, {3, S}, 3);
  monitor.on_event(1, {1, D}, 4);
  EXPECT_TRUE(monitor.on_event(1, {0, D}, 5));   // first violation
  monitor.on_event(1, {3, D}, 6);
  EXPECT_TRUE(monitor.on_event(1, {2, D}, 7));   // second
  EXPECT_EQ(monitor.first_violation_time(), 5);
  EXPECT_EQ(monitor.violation_count(), 2u);
}

TEST(OnlineMonitor, CrownSpecAcrossProcesses) {
  // The crossing pair completes the 2-crown at the second delivery.
  std::vector<Message> universe = {{0, 0, 1, 0}, {1, 1, 0, 0}};
  OnlineMonitor monitor(universe, sync_crown(2));
  monitor.on_event(0, {0, S}, 0);
  monitor.on_event(1, {1, S}, 1);
  EXPECT_FALSE(monitor.on_event(1, {0, D}, 2));
  EXPECT_TRUE(monitor.on_event(0, {1, D}, 3));
}

}  // namespace
}  // namespace msgorder
