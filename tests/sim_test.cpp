// The discrete-event simulator: traces, determinism, network models,
// workload generation.
#include <gtest/gtest.h>

#include "src/checker/limit_sets.hpp"
#include "src/protocols/async.hpp"
#include "src/sim/simulator.hpp"

namespace msgorder {
namespace {

TEST(Workload, RandomWorkloadShape) {
  Rng rng(1);
  WorkloadOptions opts;
  opts.n_processes = 5;
  opts.n_messages = 300;
  opts.red_fraction = 0.25;
  const Workload w = random_workload(opts, rng);
  ASSERT_EQ(w.size(), 300u);
  SimTime last = 0;
  std::size_t red = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(w[i].message.id, i);  // numbered in time order
    EXPECT_GE(w[i].time, last);
    last = w[i].time;
    EXPECT_NE(w[i].message.src, w[i].message.dst);
    EXPECT_LT(w[i].message.src, 5u);
    red += w[i].message.color == 1;
  }
  EXPECT_GT(red, 40u);
  EXPECT_LT(red, 120u);
}

TEST(Workload, ScriptedPreservesEntries) {
  const Workload w = scripted_workload(
      {{0.0, 0, 1, 0}, {1.0, 1, 2, 3}, {0.5, 2, 0, 0}});
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].message.id, 0u);
  EXPECT_EQ(w[1].message.id, 2u);  // sorted by time, ids by entry order
  EXPECT_EQ(w[2].message.color, 3);
  const auto universe = workload_universe(w);
  EXPECT_EQ(universe[2].src, 2u);
}

TEST(Network, FifoToggleOrdersArrivals) {
  NetworkOptions opts;
  opts.base_delay = 1.0;
  opts.jitter_mean = 5.0;
  opts.fifo_channels = true;
  Network net(opts, 3, 2);
  SimTime last = 0;
  for (int i = 0; i < 50; ++i) {
    const SimTime arrival = net.arrival_time(0, 1, 0.0);
    EXPECT_GT(arrival, last);
    last = arrival;
  }
}

TEST(Network, NonFifoReorders) {
  NetworkOptions opts;
  opts.jitter_mean = 5.0;
  Network net(opts, 3, 2);
  bool reordered = false;
  SimTime last = 0;
  for (int i = 0; i < 50; ++i) {
    const SimTime arrival = net.arrival_time(0, 1, 0.0);
    if (arrival < last) reordered = true;
    last = arrival;
  }
  EXPECT_TRUE(reordered);
}

TEST(Simulator, AsyncDeliversEverything) {
  Rng rng(7);
  WorkloadOptions opts;
  opts.n_processes = 4;
  opts.n_messages = 150;
  const Workload w = random_workload(opts, rng);
  const SimResult result = simulate(w, AsyncProtocol::factory(), 4);
  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_TRUE(result.trace.all_delivered());
  EXPECT_EQ(result.trace.user_packets(), 150u);
  EXPECT_EQ(result.trace.control_packets(), 0u);
  EXPECT_EQ(result.trace.tag_bytes(), 0u);
}

TEST(Simulator, TraceIsAValidSystemRun) {
  Rng rng(9);
  WorkloadOptions opts;
  opts.n_processes = 3;
  opts.n_messages = 80;
  const Workload w = random_workload(opts, rng);
  const SimResult result = simulate(w, AsyncProtocol::factory(), 3);
  ASSERT_TRUE(result.completed);
  std::string error;
  const auto system = result.trace.to_system_run(&error);
  ASSERT_TRUE(system.has_value()) << error;
  EXPECT_TRUE(system->quiescent());
  const auto user = result.trace.to_user_run(&error);
  ASSERT_TRUE(user.has_value()) << error;
  EXPECT_TRUE(in_async(*user));
  EXPECT_EQ(user->message_count(), 80u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  WorkloadOptions opts;
  opts.n_processes = 3;
  opts.n_messages = 50;
  Rng rng_a(11);
  Rng rng_b(11);
  const Workload wa = random_workload(opts, rng_a);
  const Workload wb = random_workload(opts, rng_b);
  SimOptions sopts;
  sopts.seed = 5;
  const SimResult a = simulate(wa, AsyncProtocol::factory(), 3, sopts);
  const SimResult b = simulate(wb, AsyncProtocol::factory(), 3, sopts);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.trace.to_system_run()->key(), b.trace.to_system_run()->key());
  EXPECT_EQ(a.trace.mean_latency(), b.trace.mean_latency());
}

TEST(Simulator, DifferentSeedsDiffer) {
  WorkloadOptions opts;
  opts.n_processes = 3;
  opts.n_messages = 50;
  Rng rng(11);
  const Workload w = random_workload(opts, rng);
  SimOptions a;
  a.seed = 1;
  SimOptions b;
  b.seed = 2;
  const SimResult ra = simulate(w, AsyncProtocol::factory(), 3, a);
  const SimResult rb = simulate(w, AsyncProtocol::factory(), 3, b);
  EXPECT_NE(ra.trace.to_system_run()->key(),
            rb.trace.to_system_run()->key());
}

TEST(Simulator, NonFifoNetworkProducesNonCausalRunsUnderAsync) {
  // The whole reason protocols exist: the raw network reorders.
  Rng rng(13);
  WorkloadOptions opts;
  opts.n_processes = 3;
  opts.n_messages = 120;
  opts.mean_gap = 0.2;  // hot traffic -> overtaking likely
  const Workload w = random_workload(opts, rng);
  SimOptions sopts;
  sopts.network.jitter_mean = 3.0;
  const SimResult result = simulate(w, AsyncProtocol::factory(), 3, sopts);
  ASSERT_TRUE(result.completed);
  const auto user = result.trace.to_user_run();
  ASSERT_TRUE(user.has_value());
  EXPECT_FALSE(in_causal(*user));
}

TEST(Simulator, MessageTimesAreOrdered) {
  Rng rng(17);
  WorkloadOptions opts;
  opts.n_processes = 3;
  opts.n_messages = 60;
  const Workload w = random_workload(opts, rng);
  const SimResult result = simulate(w, AsyncProtocol::factory(), 3);
  ASSERT_TRUE(result.completed);
  for (MessageId m = 0; m < 60; ++m) {
    const MessageTimes& t = result.trace.times(m);
    ASSERT_TRUE(t.complete());
    EXPECT_LE(*t.invoke, *t.send);
    EXPECT_LT(*t.send, *t.receive);
    EXPECT_LE(*t.receive, *t.deliver);
    EXPECT_GE(t.latency(), 0.0);
  }
  EXPECT_GT(result.trace.mean_latency(), 0.0);
  EXPECT_GE(result.trace.max_latency(), result.trace.mean_latency());
}

// Regression for ISSUE 2: MessageTimes used -1 sentinels on double and
// latency()/send_delay()/delivery_delay() silently returned garbage on
// incomplete messages.  Now the timestamps are optionals: a message the
// protocol never released has empty send/receive/deliver, complete() is
// false, and the aggregate statistics skip it instead of averaging
// nonsense.
TEST(Simulator, IncompleteMessageTimesAreEmptyNotGarbage) {
  // A protocol that swallows every invoke: nothing is ever sent.
  class BlackHole final : public Protocol {
   public:
    void on_invoke(const Message&) override {}
    void on_packet(const Packet&) override {}
    std::string name() const override { return "black-hole"; }
  };
  Rng rng(23);
  WorkloadOptions opts;
  opts.n_processes = 2;
  opts.n_messages = 5;
  const Workload w = random_workload(opts, rng);
  const SimResult result = simulate(
      w, [](Host&) { return std::make_unique<BlackHole>(); }, 2);
  EXPECT_FALSE(result.completed);
  for (MessageId m = 0; m < 5; ++m) {
    const MessageTimes& t = result.trace.times(m);
    EXPECT_TRUE(t.invoke.has_value());
    EXPECT_FALSE(t.send.has_value());
    EXPECT_FALSE(t.receive.has_value());
    EXPECT_FALSE(t.deliver.has_value());
    EXPECT_FALSE(t.complete());
  }
  // Aggregates over a trace with no complete message are well-defined.
  EXPECT_EQ(result.trace.mean_latency(), 0.0);
  EXPECT_EQ(result.trace.max_latency(), 0.0);
  EXPECT_FALSE(result.trace.all_delivered());
}

TEST(Simulator, EmptyWorkloadCompletes) {
  const SimResult result = simulate({}, AsyncProtocol::factory(), 2);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.trace.user_packets(), 0u);
}

TEST(Simulator, LivelockProtectionTriggers) {
  // A protocol that never sends: the run cannot complete.
  class SilentProtocol final : public Protocol {
   public:
    void on_invoke(const Message&) override {}
    void on_packet(const Packet&) override {}
    std::string name() const override { return "silent"; }
  };
  const Workload w = scripted_workload({{0.0, 0, 1, 0}});
  const SimResult result = simulate(
      w, [](Host&) { return std::make_unique<SilentProtocol>(); }, 2);
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(result.error.empty());
}

}  // namespace
}  // namespace msgorder
