#include <gtest/gtest.h>

#include "src/spec/library.hpp"
#include "src/spec/predicate.hpp"

namespace msgorder {
namespace {

constexpr UserEventKind S = UserEventKind::kSend;
constexpr UserEventKind R = UserEventKind::kDeliver;

TEST(Predicate, ToStringCausal) {
  EXPECT_EQ(causal_ordering().to_string(),
            "(x.s |> y.s) & (y.r |> x.r)");
}

TEST(Predicate, ToStringWithConstraints) {
  const std::string text = fifo().to_string();
  EXPECT_NE(text.find("process(x.s)=process(y.s)"), std::string::npos);
  EXPECT_NE(text.find("process(x.r)=process(y.r)"), std::string::npos);
}

TEST(Predicate, ToStringColor) {
  const std::string text = global_forward_flush(1).to_string();
  EXPECT_NE(text.find("color(y)=1"), std::string::npos);
}

TEST(Predicate, VarNamesDefaultAndCustom) {
  ForbiddenPredicate p = make_predicate(5, {{4, S, 0, R}});
  EXPECT_EQ(p.var_name(0), "x");
  EXPECT_EQ(p.var_name(3), "w");
  EXPECT_EQ(p.var_name(4), "x4");
  p.var_names = {"a", "b", "c", "d", "e"};
  EXPECT_EQ(p.var_name(4), "e");
}

TEST(Normalize, PlainPredicateUnchanged) {
  const auto n = normalize(causal_ordering());
  EXPECT_EQ(n.triviality, NormalTriviality::kNone);
  EXPECT_EQ(n.predicate.conjuncts, causal_ordering().conjuncts);
}

TEST(Normalize, DropsTautologicalSelfConjunct) {
  // (x.s |> x.r) & (x.s |> y.s) & (y.r |> x.r)
  const auto p = make_predicate(
      2, {{0, S, 0, R}, {0, S, 1, S}, {1, R, 0, R}});
  const auto n = normalize(p);
  EXPECT_EQ(n.triviality, NormalTriviality::kNone);
  EXPECT_EQ(n.predicate.conjuncts.size(), 2u);
}

TEST(Normalize, UnsatisfiableSelfLoops) {
  for (const Conjunct c : {Conjunct{0, S, 0, S}, Conjunct{0, R, 0, R},
                           Conjunct{0, R, 0, S}}) {
    const auto n = normalize(make_predicate(1, {c}));
    EXPECT_EQ(n.triviality, NormalTriviality::kUnsatisfiable);
  }
}

TEST(Normalize, EmptyConjunctionIsTautological) {
  EXPECT_EQ(normalize(make_predicate(2, {})).triviality,
            NormalTriviality::kTautological);
  // Only tautological self conjuncts -> also tautological overall.
  EXPECT_EQ(normalize(make_predicate(1, {{0, S, 0, R}})).triviality,
            NormalTriviality::kTautological);
}

TEST(Normalize, DeduplicatesConjuncts) {
  const auto p =
      make_predicate(2, {{0, S, 1, S}, {0, S, 1, S}, {1, R, 0, R}});
  const auto n = normalize(p);
  EXPECT_EQ(n.predicate.conjuncts.size(), 2u);
}

TEST(Normalize, DropsUnusedVariablesAndRemaps) {
  // Variable 1 is unused; 0 and 2 form the causal pair.
  const auto p = make_predicate(3, {{0, S, 2, S}, {2, R, 0, R}},
                                {{0, S, 2, S}}, {{2, 7}});
  const auto n = normalize(p);
  EXPECT_EQ(n.triviality, NormalTriviality::kNone);
  EXPECT_EQ(n.predicate.arity, 2u);
  EXPECT_EQ(n.predicate.conjuncts[0].rhs, 1u);
  ASSERT_EQ(n.predicate.color_constraints.size(), 1u);
  EXPECT_EQ(n.predicate.color_constraints[0].var, 1u);
  ASSERT_EQ(n.predicate.process_constraints.size(), 1u);
  EXPECT_EQ(n.predicate.process_constraints[0].var_b, 1u);
}

TEST(Normalize, DropsConstraintsOnUnusedVariables) {
  const auto p =
      make_predicate(3, {{0, S, 1, S}, {1, R, 0, R}}, {}, {{2, 1}});
  const auto n = normalize(p);
  EXPECT_TRUE(n.predicate.color_constraints.empty());
}

TEST(CompositeSpec, ToStringJoins) {
  const CompositeSpec spec = two_way_flush();
  const std::string text = spec.to_string();
  EXPECT_NE(text.find("AND"), std::string::npos);
  EXPECT_NE(text.find("forbid"), std::string::npos);
}

}  // namespace
}  // namespace msgorder
