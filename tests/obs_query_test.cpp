// Tests for the trace-log index + query engine (ISSUE 9): causal cones
// against a brute-force reachability check, dense BitMatrix vs BFS
// parity, consistent cuts, why-blocked chains on a token protocol, the
// run-divergence bisector on identical and deliberately perturbed runs,
// and the msgorder_query subcommand renderings the CI smoke tests grep.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/obs/json.hpp"
#include "src/obs/tracelog.hpp"
#include "src/obs/tracelog_index.hpp"
#include "src/protocols/fifo.hpp"
#include "src/protocols/sync_token.hpp"
#include "src/sim/simulator.hpp"

namespace msgorder {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "msgorder_" + name;
}

struct Fixture {
  std::string path;
  LoadedTraceLog log;
};

/// One recorded sync-token run (tokens mean real wait_token holds with
/// blocking-process references — the why-chain's food).
Fixture record_sync_token(const std::string& name, std::size_t shards = 1,
                          std::uint64_t perturb_xor = 0) {
  Rng rng(404);
  WorkloadOptions wopts;
  wopts.n_processes = 4;
  wopts.n_messages = 50;
  wopts.mean_gap = 0.3;
  const Workload workload = random_workload(wopts, rng);
  Fixture fx;
  fx.path = temp_path(name);
  ObservabilityOptions oopts;
  oopts.tracelog = fx.path;
  Observability obs(oopts);
  SimOptions sopts;
  sopts.seed = 31;
  sopts.network.jitter_mean = 3.0;
  sopts.shards = shards;
  sopts.observability = &obs;
  if (perturb_xor != 0) {
    sopts.network.perturb_channel_xor = perturb_xor;
    sopts.network.perturb_src = workload.front().message.src;
    sopts.network.perturb_dst = workload.front().message.dst;
  }
  const SimResult result =
      simulate(workload, SyncTokenProtocol::factory(), 4, sopts);
  EXPECT_TRUE(result.completed) << result.error;
  std::string error;
  auto log = load_tracelog(fx.path, &error);
  EXPECT_TRUE(log.has_value()) << error;
  if (log.has_value()) fx.log = std::move(*log);
  return fx;
}

/// Brute-force causal reachability: does `from` reach `to` following
/// program order + send->receive edges?  Ground truth for the index.
bool reaches(const TraceLogIndex& index, std::size_t from, std::size_t to) {
  if (from == to) return true;
  std::vector<std::size_t> stack = {from};
  std::set<std::size_t> seen = {from};
  while (!stack.empty()) {
    const std::size_t ev = stack.back();
    stack.pop_back();
    for (std::size_t next = ev + 1; next < index.event_count(); ++next) {
      // Recompute edges naively: program order or channel edge.
      const TraceLogRecord& a = index.event(ev);
      const TraceLogRecord& b = index.event(next);
      bool edge = false;
      if (a.process == b.process) {
        // Program-order edge only to the *next* event at the process.
        bool between = false;
        for (std::size_t mid = ev + 1; mid < next; ++mid) {
          if (index.event(mid).process == a.process) between = true;
        }
        edge = !between;
      }
      if (a.event.kind == EventKind::kSend &&
          b.event.kind == EventKind::kReceive &&
          a.event.msg == b.event.msg) {
        edge = true;
      }
      if (edge && seen.insert(next).second) {
        if (next == to) return true;
        stack.push_back(next);
      }
    }
  }
  return false;
}

TEST(TraceLogIndex, ConesMatchBruteForceAndBfsMatchesDense) {
  const Fixture fx = record_sync_token("index_fixture.tracelog");
  ASSERT_FALSE(fx.log.events.empty());
  const TraceLogIndex dense = TraceLogIndex::build(fx.log);
  // dense_limit 0 forces the BFS path on the same log.
  const TraceLogIndex sparse = TraceLogIndex::build(fx.log, 0);
  ASSERT_TRUE(dense.dense());
  ASSERT_FALSE(sparse.dense());
  ASSERT_EQ(dense.event_count(), sparse.event_count());

  // Both paths agree on every anchor; spot-check a few against the
  // brute force (it is quadratic, so sample).
  for (std::size_t ev = 0; ev < dense.event_count();
       ev += dense.event_count() / 17 + 1) {
    const auto past_d = dense.causal_past(ev);
    const auto past_s = sparse.causal_past(ev);
    EXPECT_EQ(past_d, past_s) << "past of " << ev;
    const auto fut_d = dense.causal_future(ev);
    const auto fut_s = sparse.causal_future(ev);
    EXPECT_EQ(fut_d, fut_s) << "future of " << ev;
    // The anchor is a member of both of its own cones.
    EXPECT_TRUE(std::find(past_d.begin(), past_d.end(), ev) != past_d.end());
    EXPECT_TRUE(std::find(fut_d.begin(), fut_d.end(), ev) != fut_d.end());
    for (const std::size_t p : past_d) {
      EXPECT_TRUE(reaches(dense, p, ev))
          << p << " not an ancestor of " << ev;
    }
  }

  // Exhaustive pairwise check on a small prefix.
  const std::size_t n = std::min<std::size_t>(dense.event_count(), 40);
  for (std::size_t a = 0; a < n; ++a) {
    const auto past = dense.causal_past(a);
    for (std::size_t b = 0; b < n; ++b) {
      const bool in_cone =
          std::find(past.begin(), past.end(), b) != past.end();
      EXPECT_EQ(in_cone, reaches(dense, b, a))
          << "cone membership of " << b << " in past(" << a << ")";
    }
  }
}

TEST(TraceLogIndex, SendReceiveEdgeAndLamportAgree) {
  const Fixture fx = record_sync_token("lamport_fixture.tracelog");
  const TraceLogIndex index = TraceLogIndex::build(fx.log);
  // Every receive has its send in the causal past, and Lamport clocks
  // are monotone along cone membership.
  for (std::size_t ev = 0; ev < index.event_count(); ++ev) {
    const TraceLogRecord& rec = index.event(ev);
    if (rec.event.kind != EventKind::kReceive) continue;
    const auto send = index.find_event(rec.event.msg, EventKind::kSend);
    ASSERT_TRUE(send.has_value());
    const auto past = index.causal_past(ev);
    EXPECT_TRUE(std::find(past.begin(), past.end(), *send) != past.end());
    EXPECT_LT(index.event(*send).lamport, rec.lamport);
  }
}

TEST(TraceLogIndex, CutAtIsConsistentAndAccountsInFlight) {
  const Fixture fx = record_sync_token("cut_fixture.tracelog");
  const TraceLogIndex index = TraceLogIndex::build(fx.log);
  const std::size_t mid_ev = index.event_count() / 2;
  const SimTime t = index.event(mid_ev).time;
  const CutResult cut = cut_at(index, t);
  EXPECT_TRUE(cut.consistent);
  EXPECT_GT(cut.events_in_cut, 0u);
  EXPECT_EQ(cut.frontier.size(), fx.log.header.n_processes);
  // Every in-flight message straddles the cut: send <= t, receive > t
  // (or missing).
  for (const MessageId m : cut.in_flight) {
    const auto send = index.find_event(m, EventKind::kSend);
    ASSERT_TRUE(send.has_value());
    EXPECT_LE(index.event(*send).time, t);
    const auto recv = index.find_event(m, EventKind::kReceive);
    if (recv.has_value()) EXPECT_GT(index.event(*recv).time, t);
  }
  // Cuts at the extremes: before the first event, and after the last.
  const CutResult empty = cut_at(index, index.event(0).time - 1.0);
  EXPECT_EQ(empty.events_in_cut, 0u);
  EXPECT_TRUE(empty.in_flight.empty());
  const CutResult full =
      cut_at(index, index.event(index.event_count() - 1).time + 1.0);
  EXPECT_EQ(full.events_in_cut, index.event_count());
  EXPECT_TRUE(full.in_flight.empty());
}

TEST(TraceLogIndex, WhyBlockedWalksToTheRootBlocker) {
  const Fixture fx = record_sync_token("why_fixture.tracelog");
  // Find a message with a hold report; the chain must start there and
  // terminate (root or cycle) within the universe.
  std::optional<MessageId> held;
  for (const TraceLogRecord& rec : fx.log.records) {
    if (rec.type == TraceLogRecord::Type::kHold) {
      held = rec.held_msg;
      break;
    }
  }
  ASSERT_TRUE(held.has_value()) << "sync-token run produced no holds";
  const WhyChain chain = why_blocked(fx.log, *held);
  EXPECT_EQ(chain.msg, *held);
  ASSERT_FALSE(chain.links.empty());
  EXPECT_EQ(chain.links.front().msg, *held);
  EXPECT_GT(chain.links.front().reports, 0u);
  for (std::size_t i = 0; i + 1 < chain.links.size(); ++i) {
    ASSERT_TRUE(chain.links[i].reason.blocking_msg.has_value());
    EXPECT_EQ(*chain.links[i].reason.blocking_msg, chain.links[i + 1].msg);
  }
  if (!chain.cycle) {
    // The root link's reason names no further blocking message that was
    // itself reported held.
    const WhyLink& root = chain.links.back();
    if (root.reason.blocking_msg.has_value()) {
      const WhyChain next = why_blocked(fx.log, *root.reason.blocking_msg);
      EXPECT_TRUE(next.links.empty());
    }
  }
  // A message that was never held reports an empty chain.
  const WhyChain none = why_blocked(fx.log, 9999);
  EXPECT_TRUE(none.links.empty());
}

TEST(Queries, TextAndJsonRenderingsAreWellFormed) {
  const Fixture fx = record_sync_token("query_fixture.tracelog");
  std::string error;

  const QueryOutput summary = query_summary(fx.path);
  EXPECT_EQ(summary.exit_code, 0);
  EXPECT_NE(summary.text.find("engine sequential"), std::string::npos)
      << summary.text;
  EXPECT_NE(summary.text.find("events"), std::string::npos);
  ASSERT_TRUE(json_validate(summary.json, &error)) << error;
  EXPECT_NE(summary.json.find("\"schema\":\"msgorder.query/1\""),
            std::string::npos);
  EXPECT_NE(summary.json.find("\"subcommand\":\"summary\""),
            std::string::npos);

  const QueryOutput cone =
      query_cone(fx.path, 0, EventKind::kDeliver, false, 0);
  EXPECT_EQ(cone.exit_code, 0);
  EXPECT_NE(cone.text.find("<- anchor"), std::string::npos);
  ASSERT_TRUE(json_validate(cone.json, &error)) << error;

  // A limit keeps the tail and reports what it dropped.
  const QueryOutput limited =
      query_cone(fx.path, 0, EventKind::kDeliver, false, 2);
  EXPECT_EQ(limited.exit_code, 0);
  ASSERT_TRUE(json_validate(limited.json, &error)) << error;

  const QueryOutput cut = query_cut(fx.path, 20.0);
  EXPECT_EQ(cut.exit_code, 0);
  EXPECT_NE(cut.text.find("cut at t="), std::string::npos) << cut.text;
  EXPECT_NE(cut.text.find("in flight"), std::string::npos);
  ASSERT_TRUE(json_validate(cut.json, &error)) << error;

  std::optional<MessageId> held;
  for (const TraceLogRecord& rec : fx.log.records) {
    if (rec.type == TraceLogRecord::Type::kHold) {
      held = rec.held_msg;
      break;
    }
  }
  ASSERT_TRUE(held.has_value());
  const QueryOutput why = query_why(fx.path, *held);
  EXPECT_EQ(why.exit_code, 0);
  EXPECT_NE(why.text.find("wait_"), std::string::npos) << why.text;
  ASSERT_TRUE(json_validate(why.json, &error)) << error;

  // Errors: missing file and unknown anchor exit 2 with an "error" key.
  const QueryOutput missing = query_summary(temp_path("nope.tracelog"));
  EXPECT_EQ(missing.exit_code, 2);
  ASSERT_TRUE(json_validate(missing.json, &error)) << error;
  EXPECT_NE(missing.json.find("\"error\""), std::string::npos);
  const QueryOutput bad_anchor =
      query_cone(fx.path, 9999, EventKind::kDeliver, false, 0);
  EXPECT_EQ(bad_anchor.exit_code, 2);

  EXPECT_EQ(parse_event_kind("s*"), EventKind::kInvoke);
  EXPECT_EQ(parse_event_kind("deliver"), EventKind::kDeliver);
  EXPECT_EQ(parse_event_kind("bogus"), std::nullopt);
}

// The acceptance criterion: identical-seed sequential vs sharded logs
// report no divergence; a run with one channel's RNG stream perturbed
// names the exact first diverging record with causal context from both
// sides.
TEST(Diverge, SequentialVsShardedIsCleanAndPerturbedIsBisected) {
  const Fixture seq = record_sync_token("div_seq.tracelog", 1);
  const Fixture shd = record_sync_token("div_shd.tracelog", 4);
  const Fixture pert =
      record_sync_token("div_pert.tracelog", 1, 0x9e3779b97f4a7c15ULL);

  // Clean pair.
  const DivergenceReport clean = diverge_tracelogs(seq.path, shd.path);
  ASSERT_TRUE(clean.ok) << clean.error;
  EXPECT_FALSE(clean.diverged);
  EXPECT_EQ(clean.records_compared, seq.log.records.size());
  EXPECT_TRUE(clean.warnings.empty());
  const QueryOutput clean_q = query_diverge(seq.path, shd.path, 12);
  EXPECT_EQ(clean_q.exit_code, 0);
  EXPECT_NE(clean_q.text.find("no divergence"), std::string::npos);
  std::string error;
  ASSERT_TRUE(json_validate(clean_q.json, &error)) << error;
  EXPECT_NE(clean_q.json.find("\"diverged\":false"), std::string::npos);

  // Perturbed pair: the report must name the exact first index at which
  // the two record streams differ — verified against a manual scan.
  const DivergenceReport div = diverge_tracelogs(seq.path, pert.path);
  ASSERT_TRUE(div.ok) << div.error;
  ASSERT_TRUE(div.diverged);
  std::size_t expected = 0;
  const std::size_t common =
      std::min(seq.log.records.size(), pert.log.records.size());
  while (expected < common &&
         seq.log.records[expected] == pert.log.records[expected]) {
    ++expected;
  }
  EXPECT_EQ(div.index, expected);
  EXPECT_FALSE(div.field.empty());
  ASSERT_TRUE(div.record_a.has_value());
  ASSERT_TRUE(div.record_b.has_value());
  EXPECT_FALSE(*div.record_a == *div.record_b);
  // Non-empty causal-past context from BOTH logs.
  EXPECT_FALSE(div.context_a.empty());
  EXPECT_FALSE(div.context_b.empty());

  const QueryOutput div_q = query_diverge(seq.path, pert.path, 12);
  EXPECT_EQ(div_q.exit_code, 1);
  EXPECT_NE(div_q.text.find("diverge"), std::string::npos);
  EXPECT_NE(div_q.text.find("<- diverging record"), std::string::npos);
  ASSERT_TRUE(json_validate(div_q.json, &error)) << error;
  EXPECT_NE(div_q.json.find("\"diverged\":true"), std::string::npos);
  EXPECT_NE(div_q.json.find("\"context_a\""), std::string::npos);
  EXPECT_NE(div_q.json.find("\"context_b\""), std::string::npos);

  // Self-compare is trivially clean.
  const DivergenceReport self = diverge_tracelogs(seq.path, seq.path);
  ASSERT_TRUE(self.ok);
  EXPECT_FALSE(self.diverged);

  std::remove(seq.path.c_str());
  std::remove(shd.path.c_str());
  std::remove(pert.path.c_str());
}

TEST(Diverge, MismatchedSetupsWarnAndMissingFilesError) {
  const Fixture a = record_sync_token("warn_a.tracelog");
  // A log with a different seed: still diffable, but warned about.
  const std::string b_path = temp_path("warn_b.tracelog");
  {
    Rng rng(404);
    WorkloadOptions wopts;
    wopts.n_processes = 4;
    wopts.n_messages = 50;
    wopts.mean_gap = 0.3;
    const Workload workload = random_workload(wopts, rng);
    ObservabilityOptions oopts;
    oopts.tracelog = b_path;
    Observability obs(oopts);
    SimOptions sopts;
    sopts.seed = 32;  // != 31
    sopts.network.jitter_mean = 3.0;
    sopts.observability = &obs;
    const SimResult result =
        simulate(workload, SyncTokenProtocol::factory(), 4, sopts);
    ASSERT_TRUE(result.completed) << result.error;
  }
  const DivergenceReport warned = diverge_tracelogs(a.path, b_path);
  ASSERT_TRUE(warned.ok) << warned.error;
  EXPECT_FALSE(warned.warnings.empty());

  const DivergenceReport missing =
      diverge_tracelogs(a.path, temp_path("absent.tracelog"));
  EXPECT_FALSE(missing.ok);
  EXPECT_FALSE(missing.error.empty());
  const QueryOutput missing_q =
      query_diverge(a.path, temp_path("absent.tracelog"), 12);
  EXPECT_EQ(missing_q.exit_code, 2);

  std::remove(a.path.c_str());
  std::remove(b_path.c_str());
}

}  // namespace
}  // namespace msgorder
