#include <gtest/gtest.h>

#include "src/checker/limit_sets.hpp"
#include "src/checker/violation.hpp"
#include "src/poset/lift.hpp"
#include "src/protocols/sync_locks.hpp"
#include "src/protocols/sync_sequencer.hpp"
#include "src/protocols/sync_token.hpp"
#include "src/spec/library.hpp"
#include "tests/sim_harness.hpp"

namespace msgorder {
namespace {

TEST(SyncSequencer, ProducesLogicallySynchronousRuns) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto result =
        run_protocol(SyncSequencerProtocol::factory(), 4, 80, seed);
    EXPECT_TRUE(in_sync(result.run)) << "seed " << seed;
    EXPECT_TRUE(satisfies(result.run, sync_crown(2)));
    EXPECT_TRUE(satisfies(result.run, sync_crown(3)));
  }
}

TEST(SyncSequencer, UsesControlMessages) {
  const auto result =
      run_protocol(SyncSequencerProtocol::factory(), 4, 100, 3);
  // REQ + GRANT + DONE for non-sequencer senders; the sequencer's own
  // messages skip REQ/GRANT.
  EXPECT_GT(result.sim.trace.control_packets_per_message(), 1.0);
  EXPECT_LE(result.sim.trace.control_packets_per_message(), 3.0);
}

TEST(SyncSequencer, SyncTimestampsExist) {
  const auto result =
      run_protocol(SyncSequencerProtocol::factory(), 3, 60, 5);
  const auto t = sync_timestamps(result.run);
  ASSERT_TRUE(t.has_value());
  const auto numbering = sync_numbering(result.run);
  EXPECT_TRUE(numbering.has_value());
}

TEST(SyncToken, ProducesLogicallySynchronousRuns) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto result =
        run_protocol(SyncTokenProtocol::factory(), 4, 60, seed);
    EXPECT_TRUE(in_sync(result.run)) << "seed " << seed;
  }
}

TEST(SyncToken, CirculatesControlTraffic) {
  const auto result =
      run_protocol(SyncTokenProtocol::factory(), 4, 60, 3);
  // Token hops + ACKs: strictly more control chatter than the sequencer
  // under a sparse workload.
  EXPECT_GT(result.sim.trace.control_packets_per_message(), 1.0);
}

TEST(SyncProtocols, TokenPaysIdleControlTraffic) {
  // Under sparse traffic the token keeps circulating: its control
  // packets per user message far exceed the sequencer's bounded 3.
  const auto seq = run_protocol(SyncSequencerProtocol::factory(), 4, 5,
                                7, 0.0, 1, /*mean_gap=*/100.0);
  const auto tok = run_protocol(SyncTokenProtocol::factory(), 4, 5, 7,
                                0.0, 1, /*mean_gap=*/100.0);
  EXPECT_LE(seq.sim.trace.control_packets_per_message(), 3.0);
  EXPECT_GT(tok.sim.trace.control_packets_per_message(),
            2 * seq.sim.trace.control_packets_per_message());
}

TEST(SyncProtocols, AllDeliverEverythingUnderLoad) {
  for (const auto& factory :
       {SyncSequencerProtocol::factory(), SyncTokenProtocol::factory(),
        SyncLocksProtocol::factory()}) {
    const auto result = run_protocol(factory, 5, 200, 11, 0.0, 1, 0.1);
    EXPECT_TRUE(result.sim.trace.all_delivered());
    EXPECT_TRUE(in_sync(result.run));
  }
}

TEST(SyncLocks, ProducesLogicallySynchronousRuns) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto result =
        run_protocol(SyncLocksProtocol::factory(), 4, 80, seed);
    EXPECT_TRUE(in_sync(result.run)) << "seed " << seed;
    EXPECT_TRUE(result.sim.trace.all_delivered());
  }
}

TEST(SyncLocks, NoDeadlockUnderCrossingPressure) {
  // Every process bombards every other: ordered lock acquisition must
  // never wedge even when all pairs contend.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto result = run_protocol(SyncLocksProtocol::factory(), 6, 300,
                                     seed, 0.0, 1, /*mean_gap=*/0.02);
    EXPECT_TRUE(result.sim.trace.all_delivered()) << "seed " << seed;
    EXPECT_TRUE(in_sync(result.run)) << "seed " << seed;
  }
}

TEST(SyncLocks, DisjointPairsRunConcurrently) {
  // Pair traffic P0<->P1 and P2<->P3 only: locks let the pairs proceed
  // independently, so throughput roughly doubles vs the sequencer under
  // the same load.
  std::vector<std::tuple<SimTime, ProcessId, ProcessId, int>> entries;
  Rng rng(5);
  SimTime t = 0;
  for (int i = 0; i < 100; ++i) {
    t += rng.exponential(0.05);
    const bool left = rng.chance(0.5);
    const ProcessId src = left ? (rng.chance(0.5) ? 0 : 1)
                               : (rng.chance(0.5) ? 2 : 3);
    const ProcessId dst =
        left ? (src == 0 ? 1 : 0) : (src == 2 ? 3 : 2);
    entries.push_back({t, src, dst, 0});
  }
  const Workload w = scripted_workload(entries);
  SimOptions sopts;
  sopts.network.jitter_mean = 1.0;
  const SimResult locks = simulate(w, SyncLocksProtocol::factory(), 4, sopts);
  const SimResult seq =
      simulate(w, SyncSequencerProtocol::factory(), 4, sopts);
  ASSERT_TRUE(locks.completed) << locks.error;
  ASSERT_TRUE(seq.completed);
  EXPECT_LT(locks.trace.mean_latency(), seq.trace.mean_latency());
  EXPECT_TRUE(in_sync(*locks.trace.to_user_run()));
}

TEST(SyncSequencer, TwoProcessPingPong) {
  const Workload w = scripted_workload({
      {0.0, 0, 1, 0},
      {0.0, 1, 0, 0},
      {0.1, 0, 1, 0},
      {0.1, 1, 0, 0},
  });
  SimOptions sopts;
  sopts.network.jitter_mean = 5.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sopts.seed = seed;
    const SimResult sim =
        simulate(w, SyncSequencerProtocol::factory(), 2, sopts);
    ASSERT_TRUE(sim.completed) << sim.error;
    const auto run = sim.trace.to_user_run();
    ASSERT_TRUE(run.has_value());
    EXPECT_TRUE(in_sync(*run)) << "seed " << seed;
  }
}

TEST(SyncToken, SingleSenderStillWorks) {
  const Workload w = scripted_workload({
      {0.0, 2, 0, 0},
      {0.5, 2, 1, 0},
      {1.0, 2, 0, 0},
  });
  const SimResult sim = simulate(w, SyncTokenProtocol::factory(), 3);
  ASSERT_TRUE(sim.completed) << sim.error;
  EXPECT_TRUE(in_sync(*sim.trace.to_user_run()));
}

TEST(SyncProtocols, HandoffSpecHolds) {
  // The mobile-handoff spec (general class) is satisfied by a sync
  // protocol even when every message is handoff-colored.
  const auto result = run_protocol(SyncSequencerProtocol::factory(), 4,
                                   80, 13, /*red_fraction=*/1.0,
                                   /*red_color=*/2);
  EXPECT_TRUE(satisfies(result.run, mobile_handoff(2)));
}

}  // namespace
}  // namespace msgorder
