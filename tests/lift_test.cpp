// Figure 5 / Theorem 1: lifting user runs to system runs, and the SYNC
// numbering scheme.
#include <gtest/gtest.h>

#include "src/checker/limit_sets.hpp"
#include "src/poset/lift.hpp"
#include "src/poset/run_generator.hpp"

namespace msgorder {
namespace {

constexpr UserEventKind S = UserEventKind::kSend;
constexpr UserEventKind R = UserEventKind::kDeliver;

UserRun crossing_run() {
  // P0 and P1 exchange crossing messages: not logically synchronous,
  // but causally ordered.
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 1, 0, 0}};
  auto run = UserRun::from_schedules(
      ms, {{{0, S}, {1, R}}, {{1, S}, {0, R}}});
  EXPECT_TRUE(run.has_value());
  return *run;
}

UserRun serial_run() {
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 1, 0, 0}};
  auto run = UserRun::from_schedules(
      ms, {{{0, S}, {1, R}}, {{0, R}, {1, S}}});
  EXPECT_TRUE(run.has_value());
  return *run;
}

TEST(Lift, StarsImmediatelyPrecede) {
  const SystemRun lifted = lift(serial_run());
  for (const auto& seq : lifted.sequences()) {
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (seq[i].kind == EventKind::kSend) {
        ASSERT_GT(i, 0u);
        EXPECT_EQ(seq[i - 1].kind, EventKind::kInvoke);
        EXPECT_EQ(seq[i - 1].msg, seq[i].msg);
      }
      if (seq[i].kind == EventKind::kDeliver) {
        ASSERT_GT(i, 0u);
        EXPECT_EQ(seq[i - 1].kind, EventKind::kReceive);
        EXPECT_EQ(seq[i - 1].msg, seq[i].msg);
      }
    }
  }
}

TEST(Lift, RoundTripsThroughUsersView) {
  for (const UserRun& run : {serial_run(), crossing_run()}) {
    const SystemRun lifted = lift(run);
    const auto view = lifted.users_view();
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->schedules(), run.schedules());
    EXPECT_EQ(view->order(), run.order());
  }
}

TEST(Lift, RoundTripsOnRandomRuns) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    RandomRunOptions opts;
    opts.n_processes = 2 + rng.below(3);
    opts.n_messages = 1 + rng.below(8);
    const UserRun run = random_scheduled_run(opts, rng);
    const auto view = lift(run).users_view();
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->order(), run.order());
  }
}

TEST(SyncTimestamps, ExistForSerialRun) {
  const auto t = sync_timestamps(serial_run());
  ASSERT_TRUE(t.has_value());
  // Message 0 completed before message 1 started: T(0) < T(1).
  EXPECT_LT((*t)[0], (*t)[1]);
}

TEST(SyncTimestamps, AbsentForCrossingRun) {
  EXPECT_FALSE(sync_timestamps(crossing_run()).has_value());
}

TEST(SyncTimestamps, SatisfySyncCondition) {
  Rng rng(7);
  int checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    RandomRunOptions opts;
    opts.n_processes = 3;
    opts.n_messages = 4;
    opts.send_bias = 0.3;  // mostly serial -> often synchronous
    const UserRun run = random_scheduled_run(opts, rng);
    const auto t = sync_timestamps(run);
    if (!t.has_value()) continue;
    ++checked;
    for (MessageId x = 0; x < run.message_count(); ++x) {
      for (MessageId y = 0; y < run.message_count(); ++y) {
        if (x == y) continue;
        for (UserEventKind h : {S, R}) {
          for (UserEventKind f : {S, R}) {
            if (run.before(x, h, y, f)) {
              EXPECT_LT((*t)[x], (*t)[y]);
            }
          }
        }
      }
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(SyncNumbering, ConsecutivePerMessageAndMonotone) {
  const UserRun run = serial_run();
  const auto numbering = sync_numbering(run);
  ASSERT_TRUE(numbering.has_value());
  const SystemRun lifted = lift(run);
  // N(x.r) = N(x.r*) + 1 = N(x.s) + 2 = N(x.s*) + 3.
  for (MessageId m = 0; m < run.message_count(); ++m) {
    const auto n_invoke = (*numbering)[SystemRun::index(m, EventKind::kInvoke)];
    EXPECT_EQ((*numbering)[SystemRun::index(m, EventKind::kSend)],
              n_invoke + 1);
    EXPECT_EQ((*numbering)[SystemRun::index(m, EventKind::kReceive)],
              n_invoke + 2);
    EXPECT_EQ((*numbering)[SystemRun::index(m, EventKind::kDeliver)],
              n_invoke + 3);
  }
  // h -> g implies N(h) < N(g) on the lifted run.
  for (const Message& a : lifted.universe()) {
    for (const Message& b : lifted.universe()) {
      for (int ka = 0; ka < 4; ++ka) {
        for (int kb = 0; kb < 4; ++kb) {
          const SystemEvent ea{a.id, static_cast<EventKind>(ka)};
          const SystemEvent eb{b.id, static_cast<EventKind>(kb)};
          if (lifted.before(ea, eb)) {
            EXPECT_LT((*numbering)[SystemRun::index(ea.msg, ea.kind)],
                      (*numbering)[SystemRun::index(eb.msg, eb.kind)]);
          }
        }
      }
    }
  }
}

TEST(SyncNumbering, AbsentForNonSyncRun) {
  EXPECT_FALSE(sync_numbering(crossing_run()).has_value());
}

TEST(LimitSets, SerialRunIsSync) {
  EXPECT_EQ(finest_limit_set(serial_run()), LimitSet::kSync);
}

TEST(LimitSets, CrossingRunIsCausalNotSync) {
  const UserRun run = crossing_run();
  EXPECT_TRUE(in_causal(run));
  EXPECT_FALSE(in_sync(run));
  EXPECT_EQ(finest_limit_set(run), LimitSet::kCausal);
}

}  // namespace
}  // namespace msgorder
