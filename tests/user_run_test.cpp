#include <gtest/gtest.h>

#include "src/poset/user_run.hpp"

namespace msgorder {
namespace {

constexpr UserEventKind S = UserEventKind::kSend;
constexpr UserEventKind R = UserEventKind::kDeliver;

// Two messages P0 -> P1, delivered in order.
UserRun fifo_run() {
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 0, 1, 0}};
  std::vector<std::vector<ScheduleStep>> scheds = {
      {{0, S}, {1, S}},
      {{0, R}, {1, R}},
  };
  auto run = UserRun::from_schedules(ms, scheds);
  EXPECT_TRUE(run.has_value());
  return *run;
}

TEST(UserRun, FromSchedulesBasicCausality) {
  const UserRun run = fifo_run();
  EXPECT_TRUE(run.before(0, S, 1, S));   // process order at P0
  EXPECT_TRUE(run.before(0, S, 0, R));   // message edge
  EXPECT_TRUE(run.before(0, S, 1, R));   // transitive
  EXPECT_FALSE(run.before(1, R, 0, R));
  EXPECT_EQ(run.process_count(), 2u);
  EXPECT_TRUE(run.has_schedules());
}

TEST(UserRun, OutOfOrderDeliveryIsStillARun) {
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 0, 1, 0}};
  std::vector<std::vector<ScheduleStep>> scheds = {
      {{0, S}, {1, S}},
      {{1, R}, {0, R}},  // overtaking
  };
  const auto run = UserRun::from_schedules(ms, scheds);
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(run->before(1, R, 0, R));
  EXPECT_TRUE(run->before(0, S, 1, S));
}

TEST(UserRun, RejectsWrongProcess) {
  std::vector<Message> ms = {{0, 0, 1, 0}};
  std::vector<std::vector<ScheduleStep>> scheds = {
      {{0, S}, {0, R}},  // delivery scheduled at sender
      {},
  };
  std::string error;
  EXPECT_FALSE(UserRun::from_schedules(ms, scheds, &error).has_value());
  EXPECT_NE(error.find("wrong process"), std::string::npos);
}

TEST(UserRun, RejectsMissingEvent) {
  std::vector<Message> ms = {{0, 0, 1, 0}};
  std::vector<std::vector<ScheduleStep>> scheds = {{{0, S}}, {}};
  EXPECT_FALSE(UserRun::from_schedules(ms, scheds).has_value());
}

TEST(UserRun, RejectsDuplicateEvent) {
  std::vector<Message> ms = {{0, 0, 1, 0}};
  std::vector<std::vector<ScheduleStep>> scheds = {
      {{0, S}},
      {{0, R}, {0, R}},
  };
  EXPECT_FALSE(UserRun::from_schedules(ms, scheds).has_value());
}

TEST(UserRun, RejectsNonDenseIds) {
  std::vector<Message> ms = {{5, 0, 1, 0}};
  std::vector<std::vector<ScheduleStep>> scheds = {{{5, S}}, {{5, R}}};
  EXPECT_FALSE(UserRun::from_schedules(ms, scheds).has_value());
}

TEST(UserRun, RejectsDeliveryBeforeSendOnProcessLine) {
  // P0 delivers message 1 (from P1) before sending 0; P1 delivers 0
  // before sending 1 -> a causality cycle.
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 1, 0, 0}};
  std::vector<std::vector<ScheduleStep>> scheds = {
      {{1, R}, {0, S}},
      {{0, R}, {1, S}},
  };
  std::string error;
  EXPECT_FALSE(UserRun::from_schedules(ms, scheds, &error).has_value());
}

TEST(UserRun, FromEdgesAbstractRun) {
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 2, 3, 0}};
  const auto run = UserRun::from_edges(
      ms, {{UserEvent{0, S}, UserEvent{1, S}}});
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(run->before(0, S, 1, S));
  EXPECT_TRUE(run->before(0, S, 1, R));  // via message edge of 1
  EXPECT_FALSE(run->has_schedules());
}

TEST(UserRun, FromEdgesRejectsCycle) {
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 2, 3, 0}};
  std::string error;
  const auto run = UserRun::from_edges(
      ms,
      {{UserEvent{0, S}, UserEvent{1, S}}, {UserEvent{1, R}, UserEvent{0, S}}},
      &error);
  EXPECT_FALSE(run.has_value());
}

TEST(UserRun, FromEdgesRejectsDeliverBeforeSendOfSameMessage) {
  std::vector<Message> ms = {{0, 0, 1, 0}};
  EXPECT_FALSE(UserRun::from_edges(
                   ms, {{UserEvent{0, R}, UserEvent{0, S}}})
                   .has_value());
}

TEST(UserRun, AttributeAccessors) {
  std::vector<Message> ms = {{0, 3, 7, 2}};
  const auto run = UserRun::from_edges(ms, {});
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->process_of({0, S}), 3u);
  EXPECT_EQ(run->process_of({0, R}), 7u);
  EXPECT_EQ(run->color_of(0), 2);
}

TEST(UserRun, IndexRoundTrip) {
  for (MessageId m = 0; m < 5; ++m) {
    for (UserEventKind k : {S, R}) {
      const auto i = UserRun::index(m, k);
      const UserEvent e = UserRun::event_of_index(i);
      EXPECT_EQ(e.msg, m);
      EXPECT_EQ(e.kind, k);
    }
  }
}

TEST(UserRun, ConcurrentEvents) {
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 2, 3, 0}};
  const auto run = UserRun::from_edges(ms, {});
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(run->concurrent({0, S}, {1, S}));
  EXPECT_FALSE(run->concurrent({0, S}, {0, R}));
}

TEST(UserRun, ToStringMentionsProcesses) {
  const UserRun run = fifo_run();
  const std::string text = run.to_string();
  EXPECT_NE(text.find("P0:"), std::string::npos);
  EXPECT_NE(text.find("P1:"), std::string::npos);
}

}  // namespace
}  // namespace msgorder
