// The generic violation-witness search (the specification oracle).
#include <gtest/gtest.h>

#include "src/checker/limit_sets.hpp"
#include "src/checker/violation.hpp"
#include "src/poset/run_generator.hpp"
#include "src/spec/library.hpp"

namespace msgorder {
namespace {

constexpr UserEventKind S = UserEventKind::kSend;
constexpr UserEventKind R = UserEventKind::kDeliver;

UserRun overtaking_run() {
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 0, 1, 0}};
  auto run = UserRun::from_schedules(
      ms, {{{0, S}, {1, S}}, {{1, R}, {0, R}}});
  EXPECT_TRUE(run.has_value());
  return *run;
}

TEST(Violation, FindsCausalWitness) {
  const auto witness = find_violation(overtaking_run(), causal_ordering());
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ((*witness)[0], 0u);  // x := message 0
  EXPECT_EQ((*witness)[1], 1u);  // y := message 1
}

TEST(Violation, NoWitnessInCleanRun) {
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 0, 1, 0}};
  const auto run = UserRun::from_schedules(
      ms, {{{0, S}, {1, S}}, {{0, R}, {1, R}}});
  ASSERT_TRUE(run.has_value());
  EXPECT_FALSE(find_violation(*run, causal_ordering()).has_value());
  EXPECT_TRUE(satisfies(*run, causal_ordering()));
}

TEST(Violation, RespectsProcessConstraints) {
  // Cross-channel overtaking violates plain causal but not FIFO.
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 0, 2, 0}};
  // m0 to P1, m1 to P2; P1 then relays nothing — build causality so that
  // m1.r |> m0.r via a third message? Simpler: same-source sends are
  // causally ordered; deliveries at different processes are concurrent,
  // so causal ordering is satisfied too.  Use the direct channel case
  // to check the positive side instead.
  const auto run = UserRun::from_schedules(
      ms, {{{0, S}, {1, S}}, {{0, R}}, {{1, R}}});
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(satisfies(*run, fifo()));
  // And the overtaking run violates FIFO since both constraints bind.
  EXPECT_FALSE(satisfies(overtaking_run(), fifo()));
}

TEST(Violation, RespectsColorConstraints) {
  std::vector<Message> plain = {{0, 0, 1, 0}, {1, 0, 1, 0}};
  const auto run = UserRun::from_schedules(
      plain, {{{0, S}, {1, S}}, {{1, R}, {0, R}}});
  ASSERT_TRUE(run.has_value());
  // Same shape as a forward-flush violation, but nothing is red.
  EXPECT_TRUE(satisfies(*run, local_forward_flush()));
  EXPECT_FALSE(satisfies(*run, k_weaker_causal(0)));
}

TEST(Violation, WitnessSatisfiesEveryConjunct) {
  Rng rng(71);
  for (int trial = 0; trial < 200; ++trial) {
    RandomRunOptions opts;
    opts.n_processes = 3;
    opts.n_messages = 6;
    opts.send_bias = 0.8;
    const UserRun run = random_scheduled_run(opts, rng);
    for (const NamedSpec& spec : spec_zoo()) {
      const auto witness = find_violation(run, spec.predicate);
      if (!witness.has_value()) continue;
      for (const Conjunct& c : spec.predicate.conjuncts) {
        EXPECT_TRUE(run.before((*witness)[c.lhs], c.p, (*witness)[c.rhs],
                               c.q))
            << spec.name;
      }
      for (const ColorConstraint& cc : spec.predicate.color_constraints) {
        EXPECT_EQ(run.color_of((*witness)[cc.var]), cc.color);
      }
      for (const ProcessEquality& pe : spec.predicate.process_constraints) {
        EXPECT_EQ(run.process_of({(*witness)[pe.var_a], pe.kind_a}),
                  run.process_of({(*witness)[pe.var_b], pe.kind_b}));
      }
    }
  }
}

TEST(Violation, AgreesWithDirectCausalChecker) {
  Rng rng(73);
  for (int trial = 0; trial < 300; ++trial) {
    RandomRunOptions opts;
    opts.n_processes = 2 + rng.below(3);
    opts.n_messages = rng.below(8);
    const UserRun run = random_scheduled_run(opts, rng);
    EXPECT_EQ(satisfies(run, causal_ordering()), in_causal(run));
  }
}

TEST(Violation, CrownSearchOnLargerArity) {
  // A 3-crown violation needs a 3-variable assignment.
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 1, 2, 0}, {2, 2, 0, 0}};
  const auto run = UserRun::from_schedules(
      ms, {{{0, S}, {2, R}}, {{1, S}, {0, R}}, {{2, S}, {1, R}}});
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(satisfies(*run, sync_crown(2)));
  const auto witness = find_violation(*run, sync_crown(3));
  ASSERT_TRUE(witness.has_value());
}

TEST(Violation, ZeroArityNeverViolates) {
  const ForbiddenPredicate empty;
  EXPECT_TRUE(satisfies(overtaking_run(), empty));
}

TEST(Violation, EmptyRunSatisfiesEverything) {
  const auto run = UserRun::from_edges({}, {});
  ASSERT_TRUE(run.has_value());
  for (const NamedSpec& spec : spec_zoo()) {
    EXPECT_TRUE(satisfies(*run, spec.predicate));
  }
}

TEST(Violation, CompositeRequiresAllComponents) {
  const UserRun run = overtaking_run();
  CompositeSpec both;
  both.predicates = {causal_ordering(), async_zoo()[0]};
  EXPECT_FALSE(satisfies(run, both));
  CompositeSpec fine;
  fine.predicates = {async_zoo()[0], async_zoo()[1]};
  EXPECT_TRUE(satisfies(run, fine));
}

TEST(Violation, WitnessToString) {
  const auto witness = find_violation(overtaking_run(), causal_ordering());
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness_to_string(causal_ordering(), *witness),
            "x:=m0, y:=m1");
}

}  // namespace
}  // namespace msgorder
