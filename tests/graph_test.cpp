#include <gtest/gtest.h>

#include <algorithm>

#include "src/spec/graph.hpp"
#include "src/spec/library.hpp"
#include "src/util/rng.hpp"

namespace msgorder {
namespace {

constexpr UserEventKind S = UserEventKind::kSend;
constexpr UserEventKind R = UserEventKind::kDeliver;

TEST(PredicateGraph, EdgesMatchConjuncts) {
  const PredicateGraph g(causal_ordering());
  EXPECT_EQ(g.vertex_count(), 2u);
  ASSERT_EQ(g.edges().size(), 2u);
  EXPECT_EQ(g.edges()[0].from, 0u);
  EXPECT_EQ(g.edges()[0].to, 1u);
  EXPECT_EQ(g.edges()[0].p, S);
  EXPECT_EQ(g.edges()[0].q, S);
  EXPECT_EQ(g.edges()[1].q, R);
}

TEST(PredicateGraph, CausalCycleHasOrderOne) {
  const PredicateGraph g(causal_ordering());
  const auto cycles = g.simple_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].order, 1u);
  EXPECT_EQ(cycles[0].edges.size(), 2u);
}

TEST(PredicateGraph, CrownOrderEqualsK) {
  for (std::size_t k = 2; k <= 6; ++k) {
    const PredicateGraph g(sync_crown(k));
    const auto cycles = g.simple_cycles();
    ASSERT_EQ(cycles.size(), 1u) << "k=" << k;
    EXPECT_EQ(cycles[0].order, k);
    const auto walk = g.min_order_closed_walk();
    ASSERT_TRUE(walk.has_value());
    EXPECT_EQ(walk->order, k);
  }
}

TEST(PredicateGraph, AsyncZooHasOrderZeroCycles) {
  for (const ForbiddenPredicate& p : async_zoo()) {
    const PredicateGraph g(p);
    const auto walk = g.min_order_closed_walk();
    ASSERT_TRUE(walk.has_value()) << p.to_string();
    EXPECT_EQ(walk->order, 0u) << p.to_string();
  }
}

TEST(PredicateGraph, AcyclicHasNoCycles) {
  const PredicateGraph g(receive_second_before_first());
  EXPECT_FALSE(g.has_cycle());
  EXPECT_TRUE(g.simple_cycles().empty());
  EXPECT_FALSE(g.min_order_closed_walk().has_value());
}

TEST(PredicateGraph, SelfLoopIsALengthOneCycle) {
  // x.r |> x.s as a (satisfiable between DISTINCT conjunct endpoints?) —
  // structurally: an edge from vertex 0 to itself entering at s.
  const auto p = make_predicate(1, {{0, R, 0, S}});
  // normalize() would call this unsatisfiable; the raw graph still has
  // the structural self-loop, which is an order-0 cycle.
  const PredicateGraph g(p);
  const auto cycles = g.simple_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].edges.size(), 1u);
  EXPECT_EQ(cycles[0].order, 0u);
}

TEST(PredicateGraph, ParallelEdgesGiveDistinctCycles) {
  // Two parallel edges x->y plus one y->x: two distinct 2-cycles.
  const auto p =
      make_predicate(2, {{0, S, 1, S}, {0, S, 1, R}, {1, R, 0, R}});
  const PredicateGraph g(p);
  EXPECT_EQ(g.simple_cycles().size(), 2u);
}

TEST(PredicateGraph, OrderOfComputesBetaJunctions) {
  const PredicateGraph g(causal_ordering_b1());
  // B1 = (x.s |> y.r) & (y.r |> x.r): junction at y: in r / out r (not
  // beta); junction at x: in r / out s (beta).
  const auto cycles = g.simple_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].order, 1u);
}

TEST(PredicateGraph, MinWalkPrefersLowerOrderCycle) {
  // Two cycles through disjoint vertices: a 2-crown (order 2) and a
  // causal 2-cycle (order 1).  The minimum closed walk has order 1.
  ForbiddenPredicate p = make_predicate(
      4, {{0, S, 1, R}, {1, S, 0, R}, {2, S, 3, S}, {3, R, 2, R}});
  const PredicateGraph g(p);
  const auto walk = g.min_order_closed_walk();
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->order, 1u);
}

TEST(PredicateGraph, WalkMinimumEqualsSimpleCycleMinimum) {
  // DESIGN.md lemma: the minimum order over closed walks equals the
  // minimum over simple cycles.  Sweep random multigraphs and compare
  // the 0-1 BFS result with exhaustive enumeration.
  Rng rng(2718);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 2 + rng.below(5);
    const std::size_t n_edges = 1 + rng.below(2 * n);
    std::vector<Conjunct> conjuncts;
    for (std::size_t e = 0; e < n_edges; ++e) {
      Conjunct c;
      c.lhs = rng.below(n);
      c.rhs = rng.below(n);
      if (c.lhs == c.rhs) continue;  // keep satisfiable shapes
      c.p = rng.chance(0.5) ? S : R;
      c.q = rng.chance(0.5) ? S : R;
      conjuncts.push_back(c);
    }
    if (conjuncts.empty()) continue;
    const PredicateGraph g(make_predicate(n, conjuncts));
    const auto walk = g.min_order_closed_walk();
    const auto cycles = g.simple_cycles();
    ASSERT_EQ(walk.has_value(), !cycles.empty());
    if (!walk.has_value()) continue;
    std::size_t best = cycles[0].order;
    for (const Cycle& c : cycles) best = std::min(best, c.order);
    EXPECT_EQ(walk->order, best) << "trial " << trial;
  }
}

TEST(PredicateGraph, WitnessWalkIsContiguous) {
  for (const ForbiddenPredicate& p :
       {causal_ordering(), fifo(), sync_crown(4), k_weaker_causal(2)}) {
    const PredicateGraph g(p);
    const auto walk = g.min_order_closed_walk();
    ASSERT_TRUE(walk.has_value());
    const auto& es = walk->edges;
    for (std::size_t i = 0; i < es.size(); ++i) {
      EXPECT_EQ(g.edges()[es[i]].to,
                g.edges()[es[(i + 1) % es.size()]].from);
    }
    EXPECT_EQ(g.order_of(es), walk->order);
  }
}

TEST(PredicateGraph, KWeakerHasOrderOne) {
  for (std::size_t k = 0; k <= 4; ++k) {
    const PredicateGraph g(k_weaker_causal(k));
    const auto walk = g.min_order_closed_walk();
    ASSERT_TRUE(walk.has_value());
    EXPECT_EQ(walk->order, 1u);
    EXPECT_EQ(walk->edges.size(), k + 2);
  }
}

TEST(PredicateGraph, MaxCyclesCapRespected) {
  // Complete bidirectional 4-graph has many cycles; cap at 3.
  std::vector<Conjunct> conjuncts;
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      if (a != b) conjuncts.push_back({a, S, b, S});
    }
  }
  const PredicateGraph g(make_predicate(4, conjuncts));
  EXPECT_EQ(g.simple_cycles(3).size(), 3u);
}

TEST(PredicateGraph, ToStringListsEdges) {
  const PredicateGraph g(causal_ordering());
  const std::string text = g.to_string(causal_ordering());
  EXPECT_NE(text.find("x.s -> y.s"), std::string::npos);
  EXPECT_NE(text.find("y.r -> x.r"), std::string::npos);
}

}  // namespace
}  // namespace msgorder
