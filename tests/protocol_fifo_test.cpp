#include <gtest/gtest.h>

#include "src/checker/limit_sets.hpp"
#include "src/checker/violation.hpp"
#include "src/protocols/fifo.hpp"
#include "src/spec/library.hpp"
#include "tests/sim_harness.hpp"

namespace msgorder {
namespace {

TEST(FifoProtocol, SatisfiesFifoSpecAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto result =
        run_protocol(FifoProtocol::factory(), 4, 120, seed);
    EXPECT_TRUE(satisfies(result.run, fifo())) << "seed " << seed;
    EXPECT_TRUE(result.sim.trace.all_delivered());
  }
}

TEST(FifoProtocol, IsTaggedOnly) {
  const auto result = run_protocol(FifoProtocol::factory(), 4, 120, 3);
  EXPECT_EQ(result.sim.trace.control_packets(), 0u);
  EXPECT_EQ(result.sim.trace.mean_tag_bytes(), 4.0);
}

TEST(FifoProtocol, DoesNotEnforceCausalOrdering) {
  // FIFO is weaker than causal: across enough seeds some run must
  // violate plain causal ordering (triangle patterns).
  bool causal_violation_seen = false;
  for (std::uint64_t seed = 1; seed <= 20 && !causal_violation_seen;
       ++seed) {
    const auto result =
        run_protocol(FifoProtocol::factory(), 4, 150, seed);
    causal_violation_seen = !in_causal(result.run);
  }
  EXPECT_TRUE(causal_violation_seen);
}

TEST(FifoProtocol, PerChannelOrderIsTotalAndMonotone) {
  const auto result = run_protocol(FifoProtocol::factory(), 3, 100, 5);
  const UserRun& run = result.run;
  for (MessageId a = 0; a < run.message_count(); ++a) {
    for (MessageId b = 0; b < run.message_count(); ++b) {
      if (a == b) continue;
      const Message& ma = run.message(a);
      const Message& mb = run.message(b);
      if (ma.src != mb.src || ma.dst != mb.dst) continue;
      if (run.before(a, UserEventKind::kSend, b, UserEventKind::kSend)) {
        EXPECT_TRUE(run.before(a, UserEventKind::kDeliver, b,
                               UserEventKind::kDeliver));
      }
    }
  }
}

TEST(FifoProtocol, SingleChannelBurst) {
  // Everything on one channel: delivery order == send order.
  std::vector<std::tuple<SimTime, ProcessId, ProcessId, int>> entries;
  for (int i = 0; i < 40; ++i) entries.push_back({0.01 * i, 0, 1, 0});
  const Workload w = scripted_workload(entries);
  SimOptions sopts;
  sopts.network.jitter_mean = 10.0;  // extreme reorder pressure
  const SimResult sim = simulate(w, FifoProtocol::factory(), 2, sopts);
  ASSERT_TRUE(sim.completed);
  const auto run = sim.trace.to_user_run();
  ASSERT_TRUE(run.has_value());
  for (MessageId m = 0; m + 1 < 40; ++m) {
    EXPECT_TRUE(run->before(m, UserEventKind::kDeliver, m + 1,
                            UserEventKind::kDeliver));
  }
}

}  // namespace
}  // namespace msgorder
