// Tests for the observer multiplexer (ISSUE 2 satellite): SimOptions
// used to hold a single observer slot; ObserverMux fans every system
// event out to any number of subscribers.
#include <gtest/gtest.h>

#include <vector>

#include "src/checker/monitor.hpp"
#include "src/obs/observer.hpp"
#include "src/protocols/async.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/library.hpp"

namespace msgorder {
namespace {

TEST(ObserverMux, NotifiesEverySubscriberInRegistrationOrder) {
  ObserverMux mux;
  EXPECT_TRUE(mux.empty());
  std::vector<int> calls;
  mux.add([&](ProcessId, SystemEvent, SimTime) { calls.push_back(1); })
      .add([&](ProcessId, SystemEvent, SimTime) { calls.push_back(2); });
  EXPECT_EQ(mux.size(), 2u);
  mux.notify(0, SystemEvent{0, EventKind::kInvoke}, 1.0);
  EXPECT_EQ(calls, (std::vector<int>{1, 2}));
  mux.clear();
  EXPECT_TRUE(mux.empty());
  mux.notify(0, SystemEvent{0, EventKind::kSend}, 2.0);
  EXPECT_EQ(calls.size(), 2u);
}

TEST(ObserverMux, AllSimulationObserversSeeEveryEvent) {
  Rng rng(19);
  WorkloadOptions wopts;
  wopts.n_processes = 3;
  wopts.n_messages = 30;
  const Workload workload = random_workload(wopts, rng);

  std::size_t counted = 0;
  auto monitor = std::make_shared<OnlineMonitor>(workload_universe(workload),
                                                 causal_ordering());
  SimOptions sopts;
  sopts.seed = 4;
  sopts.observers
      .add([&](ProcessId, SystemEvent, SimTime) { ++counted; })
      .add(monitor_observer(monitor));

  const SimResult result =
      simulate(workload, AsyncProtocol::factory(), wopts.n_processes, sopts);
  ASSERT_TRUE(result.completed) << result.error;

  // Both subscribers saw the identical stream: 4 system events per
  // delivered message.
  EXPECT_EQ(counted, 4 * wopts.n_messages);
  EXPECT_EQ(monitor->events_seen(), counted);
}

}  // namespace
}  // namespace msgorder
