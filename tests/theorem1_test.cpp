// Theorem 1 end-to-end: for each protocol class, the limit set is
// exactly characterized — the canonical protocol of the class reaches
// every lifted run of its limit set (sufficiency/Lemma 2) and nothing
// outside it (safety), on exhaustively explored small universes.
#include <gtest/gtest.h>

#include <set>

#include "src/checker/limit_sets.hpp"
#include "src/poset/lift.hpp"
#include "src/poset/run_generator.hpp"
#include "src/semantics/explorer.hpp"
#include "src/semantics/limit_protocols.hpp"

namespace msgorder {
namespace {

struct Universe {
  const char* name;
  std::vector<Message> messages;
  std::size_t n_processes;
};

std::vector<Universe> universes() {
  return {
      {"channel-pair", {{0, 0, 1, 0}, {1, 0, 1, 0}}, 2},
      {"crossing-pair", {{0, 0, 1, 0}, {1, 1, 0, 0}}, 2},
      {"fan-in", {{0, 0, 2, 0}, {1, 1, 2, 0}}, 3},
      {"relay", {{0, 0, 1, 0}, {1, 1, 2, 0}}, 3},
      {"triangle", {{0, 0, 1, 0}, {1, 1, 2, 0}, {2, 2, 0, 0}}, 3},
      {"mixed-three", {{0, 0, 1, 0}, {1, 1, 0, 0}, {2, 0, 1, 0}}, 2},
  };
}

std::set<std::string> views_of(const ExplorationResult& result,
                               std::size_t full_size) {
  std::set<std::string> keys;
  for (const UserRun& v : result.complete_user_views) {
    if (v.message_count() == full_size) keys.insert(v.to_string());
  }
  return keys;
}

TEST(Theorem1, TaglessCharacterizesAsync) {
  for (const Universe& u : universes()) {
    const auto result = explore(TaglessAll(), u.messages, u.n_processes);
    EXPECT_TRUE(result.liveness_violations.empty()) << u.name;
    std::set<std::string> expected;
    for (const UserRun& run : enumerate_scheduled_runs(u.messages)) {
      expected.insert(run.to_string());
    }
    EXPECT_EQ(views_of(result, u.messages.size()), expected) << u.name;
  }
}

TEST(Theorem1, TaggedCharacterizesCausal) {
  for (const Universe& u : universes()) {
    const auto result = explore(TaggedCausal(), u.messages, u.n_processes);
    EXPECT_TRUE(result.liveness_violations.empty()) << u.name;
    std::set<std::string> expected;
    for (const UserRun& run : enumerate_scheduled_runs(u.messages)) {
      if (in_causal(run)) expected.insert(run.to_string());
    }
    EXPECT_EQ(views_of(result, u.messages.size()), expected) << u.name;
  }
}

TEST(Theorem1, GeneralCharacterizesSync) {
  for (const Universe& u : universes()) {
    const auto result =
        explore(GeneralSerializer(), u.messages, u.n_processes);
    EXPECT_TRUE(result.liveness_violations.empty()) << u.name;
    std::set<std::string> expected;
    for (const UserRun& run : enumerate_scheduled_runs(u.messages)) {
      if (in_sync(run)) expected.insert(run.to_string());
    }
    EXPECT_EQ(views_of(result, u.messages.size()), expected) << u.name;
  }
}

TEST(Theorem1, Lemma2LiftedContainments) {
  // X_tl / X_td / X_gn (lifted complete runs filtered by limit set) are
  // inside X_P of the respective protocols.
  for (const Universe& u : universes()) {
    const auto tagless = explore(TaglessAll(), u.messages, u.n_processes);
    const auto tagged = explore(TaggedCausal(), u.messages, u.n_processes);
    const auto general =
        explore(GeneralSerializer(), u.messages, u.n_processes);
    for (const UserRun& run : enumerate_scheduled_runs(u.messages)) {
      const std::string key = lift(run).key();
      EXPECT_TRUE(tagless.reachable_keys.count(key) > 0) << u.name;
      if (in_causal(run)) {
        EXPECT_TRUE(tagged.reachable_keys.count(key) > 0) << u.name;
      }
      if (in_sync(run)) {
        EXPECT_TRUE(general.reachable_keys.count(key) > 0) << u.name;
      }
    }
  }
}

}  // namespace
}  // namespace msgorder
