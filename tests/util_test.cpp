#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/util/bitmatrix.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"

namespace msgorder {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool lo_seen = false;
  bool hi_seen = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo_seen |= (v == -2);
    hi_seen |= (v == 2);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(17);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.exponential(2.0);
  const double mean = total / n;
  EXPECT_NEAR(mean, 2.0, 0.1);
}

TEST(Rng, SplitIndependent) {
  Rng a(5);
  Rng child = a.split();
  EXPECT_NE(a(), child());
}

TEST(BitMatrix, SetGetClear) {
  BitMatrix m(70);  // cross word boundary
  EXPECT_FALSE(m.get(3, 65));
  m.set(3, 65);
  EXPECT_TRUE(m.get(3, 65));
  m.clear(3, 65);
  EXPECT_FALSE(m.get(3, 65));
}

TEST(BitMatrix, TransitiveClosureChain) {
  BitMatrix m(5);
  m.set(0, 1);
  m.set(1, 2);
  m.set(2, 3);
  m.transitive_closure();
  EXPECT_TRUE(m.get(0, 3));
  EXPECT_TRUE(m.get(1, 3));
  EXPECT_FALSE(m.get(3, 0));
  EXPECT_FALSE(m.any_diagonal());
}

TEST(BitMatrix, TransitiveClosureCycleSetsDiagonal) {
  BitMatrix m(3);
  m.set(0, 1);
  m.set(1, 2);
  m.set(2, 0);
  m.transitive_closure();
  EXPECT_TRUE(m.any_diagonal());
  EXPECT_TRUE(m.get(0, 0));
}

TEST(BitMatrix, Popcounts) {
  BitMatrix m(4);
  m.set(0, 1);
  m.set(0, 2);
  m.set(3, 0);
  EXPECT_EQ(m.row_popcount(0), 2u);
  EXPECT_EQ(m.row_popcount(1), 0u);
  EXPECT_EQ(m.popcount(), 3u);
}

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hello\t "), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("forbid x", "forbid"));
  EXPECT_FALSE(starts_with("for", "forbid"));
}

TEST(Strings, JoinAndPad) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

}  // namespace
}  // namespace msgorder
