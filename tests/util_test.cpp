#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/util/bitmatrix.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"

namespace msgorder {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool lo_seen = false;
  bool hi_seen = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo_seen |= (v == -2);
    hi_seen |= (v == 2);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(17);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.exponential(2.0);
  const double mean = total / n;
  EXPECT_NEAR(mean, 2.0, 0.1);
}

TEST(Rng, SplitIndependent) {
  Rng a(5);
  Rng child = a.split();
  EXPECT_NE(a(), child());
}

TEST(BitMatrix, SetGetClear) {
  BitMatrix m(70);  // cross word boundary
  EXPECT_FALSE(m.get(3, 65));
  m.set(3, 65);
  EXPECT_TRUE(m.get(3, 65));
  m.clear(3, 65);
  EXPECT_FALSE(m.get(3, 65));
}

TEST(BitMatrix, TransitiveClosureChain) {
  BitMatrix m(5);
  m.set(0, 1);
  m.set(1, 2);
  m.set(2, 3);
  m.transitive_closure();
  EXPECT_TRUE(m.get(0, 3));
  EXPECT_TRUE(m.get(1, 3));
  EXPECT_FALSE(m.get(3, 0));
  EXPECT_FALSE(m.any_diagonal());
}

TEST(BitMatrix, TransitiveClosureCycleSetsDiagonal) {
  BitMatrix m(3);
  m.set(0, 1);
  m.set(1, 2);
  m.set(2, 0);
  m.transitive_closure();
  EXPECT_TRUE(m.any_diagonal());
  EXPECT_TRUE(m.get(0, 0));
}

TEST(BitMatrix, Popcounts) {
  BitMatrix m(4);
  m.set(0, 1);
  m.set(0, 2);
  m.set(3, 0);
  EXPECT_EQ(m.row_popcount(0), 2u);
  EXPECT_EQ(m.row_popcount(1), 0u);
  EXPECT_EQ(m.popcount(), 3u);
}

TEST(BitMatrix, OrRowIntoSelfAliasIsNoOp) {
  BitMatrix m(70);
  m.set(5, 1);
  m.set(5, 69);
  const BitMatrix before = m;
  m.or_row_into(5, 5);  // src == dst must be safe and change nothing
  EXPECT_EQ(m, before);
}

TEST(BitMatrix, OrRowIntoAcrossWords) {
  BitMatrix m(130);
  m.set(0, 3);
  m.set(0, 64);
  m.set(0, 129);
  m.set(1, 64);
  m.or_row_into(0, 1);
  EXPECT_TRUE(m.get(1, 3));
  EXPECT_TRUE(m.get(1, 64));
  EXPECT_TRUE(m.get(1, 129));
  EXPECT_FALSE(m.get(1, 0));
}

TEST(BitMatrix, AndRowsReportsIntersection) {
  BitMatrix m(70);
  m.set(0, 3);
  m.set(0, 69);
  m.set(1, 69);
  m.set(2, 5);
  std::vector<std::uint64_t> out(m.words_per_row(), ~0ULL);
  EXPECT_TRUE(m.and_rows(0, 1, out.data()));
  EXPECT_EQ(out[1], 1ULL << (69 - 64));
  EXPECT_EQ(out[0], 0u);
  EXPECT_FALSE(m.and_rows(0, 2));
}

TEST(BitMatrix, OrWordsInto) {
  BitMatrix m(70);
  std::vector<std::uint64_t> words(m.words_per_row(), 0);
  words[0] = 0b101;
  words[1] = 1;  // bit 64
  m.set(4, 1);
  m.or_words_into(words.data(), 4);
  EXPECT_TRUE(m.get(4, 0));
  EXPECT_TRUE(m.get(4, 1));
  EXPECT_TRUE(m.get(4, 2));
  EXPECT_TRUE(m.get(4, 64));
  EXPECT_EQ(m.row_popcount(4), 4u);
}

TEST(BitMatrix, ForEachSetAscending) {
  BitMatrix m(130);
  for (std::size_t j : {0u, 63u, 64u, 129u}) m.set(7, j);
  std::vector<std::size_t> seen;
  m.for_each_set(7, [&](std::size_t j) { seen.push_back(j); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 63, 64, 129}));
}

TEST(BitMatrix, TransposedMatchesPerBit) {
  Rng rng(123);
  for (const std::size_t n : {1u, 5u, 64u, 70u, 130u}) {
    BitMatrix m(n);
    for (std::size_t k = 0; k < 3 * n; ++k) {
      m.set(rng.below(n), rng.below(n));
    }
    const BitMatrix t = m.transposed();
    ASSERT_EQ(t.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(t.get(i, j), m.get(j, i)) << n << " " << i << " " << j;
      }
    }
  }
}

/// Word-free Floyd-Warshall used as the reference for the blocked
/// closure.
std::vector<std::vector<bool>> brute_closure(const BitMatrix& m) {
  const std::size_t n = m.size();
  std::vector<std::vector<bool>> r(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) r[i][j] = m.get(i, j);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!r[i][k]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (r[k][j]) r[i][j] = true;
      }
    }
  }
  return r;
}

TEST(BitMatrix, BlockedClosureMatchesFloydWarshall) {
  Rng rng(7);
  // Sizes crossing the 64-wide panel boundary; mix sparse and dense.
  for (const std::size_t n : {5u, 63u, 64u, 65u, 70u, 130u}) {
    for (const std::size_t edges : {n / 2, 2 * n, 4 * n}) {
      BitMatrix m(n);
      for (std::size_t k = 0; k < edges; ++k) {
        m.set(rng.below(n), rng.below(n));
      }
      const auto expect = brute_closure(m);
      m.transitive_closure();
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          ASSERT_EQ(m.get(i, j), expect[i][j])
              << "n=" << n << " edges=" << edges << " at " << i << ","
              << j;
        }
      }
    }
  }
}

TEST(BitMatrix, CompressStride2Phases) {
  // Events 2k (sends) and 2k+1 (delivers) interleave within a word.
  const std::uint64_t word = 0b110110;  // events 1,2,4,5 set
  EXPECT_EQ(compress_stride2(word, 0), 0b110u);   // sends: msgs 1,2
  EXPECT_EQ(compress_stride2(word, 1), 0b101u);   // delivers: msgs 0,2
  EXPECT_EQ(compress_stride2(~0ULL, 0), 0xFFFFFFFFu);
  EXPECT_EQ(compress_stride2(~0ULL, 1), 0xFFFFFFFFu);
  EXPECT_EQ(compress_stride2(0, 0), 0u);
}

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hello\t "), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("forbid x", "forbid"));
  EXPECT_FALSE(starts_with("for", "forbid"));
}

TEST(Strings, JoinAndPad) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

}  // namespace
}  // namespace msgorder
