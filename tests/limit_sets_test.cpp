// Section 3.4: the limit sets X_sync subset X_co subset X_async and the
// membership checkers.
#include <gtest/gtest.h>

#include "src/checker/limit_sets.hpp"
#include "src/poset/run_generator.hpp"

namespace msgorder {
namespace {

constexpr UserEventKind S = UserEventKind::kSend;
constexpr UserEventKind R = UserEventKind::kDeliver;

TEST(LimitSets, ContainmentChainOnEnumeratedRuns) {
  const std::vector<Message> ms = {
      {0, 0, 1, 0}, {1, 1, 0, 0}, {2, 0, 1, 0}};
  std::size_t n_sync = 0;
  std::size_t n_co = 0;
  std::size_t n_all = 0;
  for (const UserRun& run : enumerate_scheduled_runs(ms)) {
    ++n_all;
    EXPECT_TRUE(in_async(run));
    if (in_sync(run)) {
      ++n_sync;
      EXPECT_TRUE(in_causal(run)) << "X_sync must be inside X_co";
    }
    if (in_causal(run)) ++n_co;
  }
  EXPECT_GT(n_sync, 0u);
  EXPECT_GT(n_co, n_sync);
  EXPECT_GT(n_all, n_co);
}

TEST(LimitSets, ContainmentChainOnRandomRuns) {
  Rng rng(61);
  for (int trial = 0; trial < 400; ++trial) {
    RandomRunOptions opts;
    opts.n_processes = 2 + rng.below(3);
    opts.n_messages = 1 + rng.below(7);
    opts.send_bias = rng.uniform01();
    const UserRun run = random_scheduled_run(opts, rng);
    EXPECT_TRUE(in_async(run));
    if (in_sync(run)) {
      EXPECT_TRUE(in_causal(run));
    }
  }
}

TEST(LimitSets, EmptyRunIsSync) {
  const auto run = UserRun::from_edges({}, {});
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(finest_limit_set(*run), LimitSet::kSync);
}

TEST(LimitSets, SingleMessageIsSync) {
  std::vector<Message> ms = {{0, 0, 1, 0}};
  const auto run =
      UserRun::from_schedules(ms, {{{0, S}}, {{0, R}}});
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(finest_limit_set(*run), LimitSet::kSync);
}

TEST(LimitSets, PipelinedMessagesAreCausalNotSync) {
  // Two overlapping (but causally ordered) messages on one channel.
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 0, 1, 0}};
  const auto run = UserRun::from_schedules(
      ms, {{{0, S}, {1, S}}, {{0, R}, {1, R}}});
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(in_causal(*run));
  // x0.s |> x1.s and x1.s |> ... hmm: is this sync?  The message digraph
  // 0 -> 1 has no cycle, so it IS logically synchronous.
  EXPECT_TRUE(in_sync(*run));
}

TEST(LimitSets, CrossingPairIsCausalNotSync) {
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 1, 0, 0}};
  const auto run = UserRun::from_schedules(
      ms, {{{0, S}, {1, R}}, {{1, S}, {0, R}}});
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(in_causal(*run));
  EXPECT_FALSE(in_sync(*run));
  EXPECT_EQ(finest_limit_set(*run), LimitSet::kCausal);
}

TEST(LimitSets, OvertakingIsAsyncOnly) {
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 0, 1, 0}};
  const auto run = UserRun::from_schedules(
      ms, {{{0, S}, {1, S}}, {{1, R}, {0, R}}});
  ASSERT_TRUE(run.has_value());
  EXPECT_FALSE(in_causal(*run));
  EXPECT_EQ(finest_limit_set(*run), LimitSet::kAsync);
}

TEST(LimitSets, ThreeCrownIsCausalNotSync) {
  // Three messages in a crown: x_i.s |> x_{i+1}.r, no 2-crossing.
  // P0 sends m0 to P1, P1 sends m1 to P2, P2 sends m2 to P0, with each
  // send before the incoming delivery.
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 1, 2, 0}, {2, 2, 0, 0}};
  const auto run = UserRun::from_schedules(
      ms, {{{0, S}, {2, R}}, {{1, S}, {0, R}}, {{2, S}, {1, R}}});
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(in_causal(*run));
  EXPECT_FALSE(in_sync(*run));
}

TEST(LimitSets, AbstractRunsClassified) {
  Rng rng(67);
  std::size_t asyncs = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const UserRun run = random_abstract_run(4, 0.5, rng);
    const LimitSet s = finest_limit_set(run);
    if (s == LimitSet::kAsync) ++asyncs;
    if (s == LimitSet::kSync) {
      EXPECT_TRUE(in_causal(run));
    }
  }
  EXPECT_GT(asyncs, 0u);
}

TEST(LimitSets, Names) {
  EXPECT_EQ(to_string(LimitSet::kSync), "sync");
  EXPECT_EQ(to_string(LimitSet::kCausal), "causal");
  EXPECT_EQ(to_string(LimitSet::kAsync), "async");
}

}  // namespace
}  // namespace msgorder
