// Tests for the flight recorder (ISSUE 4 tentpole): ring-buffer
// wrap-around semantics, JSON dump format, and the end-to-end
// post-mortem path — a violating run dumps a document whose final
// records contain the violating witness's deliveries.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/checker/monitor.hpp"
#include "src/obs/json_value.hpp"
#include "src/obs/observability.hpp"
#include "src/obs/report.hpp"
#include "src/protocols/async.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/library.hpp"

namespace msgorder {
namespace {

TEST(FlightRecorder, WrapAroundKeepsTheNewestRecords) {
  FlightRecorder rec(8);
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.size(), 0u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    rec.on_event(0, SystemEvent{static_cast<MessageId>(i),
                                EventKind::kInvoke},
                 static_cast<SimTime>(i));
  }
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.total_records(), 20u);

  // Oldest retained record is #12; iteration is oldest to newest.
  std::vector<MessageId> seen;
  rec.for_each([&](const FlightRecord& r) { seen.push_back(r.event.msg); });
  ASSERT_EQ(seen.size(), 8u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 12 + i);
  }
}

TEST(FlightRecorder, ToJsonReportsDropsAndValidates) {
  FlightRecorder rec(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    rec.on_event(1, SystemEvent{static_cast<MessageId>(i), EventKind::kSend},
                 static_cast<SimTime>(i));
  }
  rec.note("marker", 6.0);  // 7th record evicts another event

  std::string error;
  const auto doc = json_parse(rec.to_json("unit test"), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->string_at("schema").value_or(""),
            "msgorder.flight_recorder/1");
  EXPECT_EQ(doc->string_at("cause").value_or(""), "unit test");
  EXPECT_EQ(doc->number_at("capacity").value_or(0), 4);
  EXPECT_EQ(doc->number_at("total_records").value_or(0), 7);
  EXPECT_EQ(doc->number_at("dropped").value_or(0), 3);
  const JsonValue* records = doc->find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->as_array().size(), 4u);
  // The newest record is the note.
  EXPECT_EQ(records->as_array().back().string_at("type").value_or(""),
            "note");
}

TEST(FlightRecorder, GreenRunProducesNoPostmortem) {
  Rng rng(3);
  WorkloadOptions wopts;
  wopts.n_processes = 3;
  wopts.n_messages = 30;
  const Workload workload = random_workload(wopts, rng);
  Observability obs(ObservabilityOptions{.flight_recorder = true});
  SimOptions sopts;
  sopts.observability = &obs;
  const SimResult result =
      simulate(workload, AsyncProtocol::factory(), 3, sopts);
  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_GT(obs.flight_recorder()->total_records(), 0u);
  EXPECT_FALSE(dump_postmortem_if_red("/nonexistent/never-written.json",
                                      result, &obs));
}

// The acceptance e2e: raw async traffic on a jittered network violates
// the causal spec; the armed flight recorder must dump a post-mortem
// whose records include the violating witness's deliveries and a note
// naming the witness.
TEST(FlightRecorder, ViolatingRunDumpsWitnessDeliveries) {
  Rng rng(17);
  WorkloadOptions wopts;
  wopts.n_processes = 4;
  wopts.n_messages = 80;
  wopts.mean_gap = 0.2;
  const Workload workload = random_workload(wopts, rng);
  const ForbiddenPredicate spec = causal_ordering();
  auto monitor =
      std::make_shared<OnlineMonitor>(workload_universe(workload), spec);
  Observability obs(ObservabilityOptions{.flight_recorder = true});
  SimOptions sopts;
  sopts.seed = 29;
  sopts.network.jitter_mean = 3.0;
  sopts.observability = &obs;
  sopts.observers.add(monitor_observer(monitor));
  const SimResult result =
      simulate(workload, AsyncProtocol::factory(), wopts.n_processes, sopts);
  ASSERT_TRUE(result.completed) << result.error;
  ASSERT_TRUE(monitor->violated()) << "async on jitter must violate causal";

  const std::string path = "flight_recorder_test_postmortem.json";
  std::string error;
  ASSERT_TRUE(dump_postmortem_if_red(path, result, &obs, monitor.get(),
                                     &error))
      << error;

  const auto doc = json_parse_file(path, &error);
  std::remove(path.c_str());
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_NE(doc->string_at("cause").value_or("").find("monitor violation"),
            std::string::npos);

  const JsonValue* records = doc->find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_FALSE(records->as_array().empty());

  // Every witness message's delivery must appear in the retained tail
  // (the recorder's capacity of 1024 covers this whole run), and the
  // witness note must name each witness variable.
  const ViolationWitness& witness = *monitor->first_witness();
  std::string note;
  for (const JsonValue& r : records->as_array()) {
    if (r.string_at("type").value_or("") == "note") {
      note = r.string_at("note").value_or("");
    }
  }
  EXPECT_NE(note.find("violation witness:"), std::string::npos);
  for (std::size_t v = 0; v < witness.size(); ++v) {
    const MessageId m = witness[v];
    EXPECT_NE(note.find("x" + std::to_string(m)), std::string::npos);
    bool delivered = false;
    for (const JsonValue& r : records->as_array()) {
      if (r.string_at("type").value_or("") == "event" &&
          r.string_at("event").value_or("") ==
              "x" + std::to_string(m) + ".r") {
        delivered = true;
      }
    }
    EXPECT_TRUE(delivered) << "witness x" << m << " delivery not retained";
  }
}

}  // namespace
}  // namespace msgorder
