// Failure injection: lossy channels break bare protocols; the
// reliability decorator restores the paper's reliable-system assumption
// and composes with every ordering stack.
#include <gtest/gtest.h>

#include "src/checker/limit_sets.hpp"
#include "src/checker/violation.hpp"
#include "src/protocols/async.hpp"
#include "src/protocols/causal_rst.hpp"
#include "src/protocols/fifo.hpp"
#include "src/protocols/reliable.hpp"
#include "src/protocols/sync_sequencer.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/library.hpp"

namespace msgorder {
namespace {

SimResult run_lossy(const ProtocolFactory& factory, double loss,
                    std::uint64_t seed, std::size_t n_messages = 120) {
  Rng rng(seed);
  WorkloadOptions wopts;
  wopts.n_processes = 4;
  wopts.n_messages = n_messages;
  wopts.mean_gap = 0.4;
  const Workload workload = random_workload(wopts, rng);
  SimOptions sopts;
  sopts.seed = seed * 7 + 5;
  sopts.network.jitter_mean = 2.0;
  sopts.network.loss_probability = loss;
  return simulate(workload, factory, wopts.n_processes, sopts);
}

TEST(LossyNetwork, BareProtocolLosesMessages) {
  const SimResult result = run_lossy(AsyncProtocol::factory(), 0.2, 1);
  EXPECT_FALSE(result.completed);
  EXPECT_GT(result.trace.drops(), 0u);
}

TEST(LossyNetwork, NoLossMeansNoDrops) {
  const SimResult result = run_lossy(AsyncProtocol::factory(), 0.0, 1);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.trace.drops(), 0u);
  EXPECT_EQ(result.trace.retransmissions(), 0u);
}

TEST(Reliable, DeliversEverythingUnderHeavyLoss) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const SimResult result =
        run_lossy(ReliableProtocol::wrap(AsyncProtocol::factory()), 0.3,
                  seed);
    EXPECT_TRUE(result.completed) << result.error << " seed " << seed;
    EXPECT_GT(result.trace.retransmissions(), 0u);
    EXPECT_GT(result.trace.drops(), 0u);
  }
}

TEST(Reliable, NoSpuriousWorkWithoutLoss) {
  // With an RTO safely above the worst round trip, a loss-free network
  // triggers no retransmissions at all.
  ReliableOptions options;
  options.retransmit_timeout = 60.0;
  const SimResult result = run_lossy(
      ReliableProtocol::wrap(AsyncProtocol::factory(), options), 0.0, 2);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.trace.retransmissions(), 0u);
  EXPECT_EQ(result.trace.duplicate_arrivals(), 0u);
}

TEST(Reliable, TightTimeoutCausesSpuriousButHarmlessRetransmits) {
  ReliableOptions options;
  options.retransmit_timeout = 1.5;  // below the mean round trip
  const SimResult result = run_lossy(
      ReliableProtocol::wrap(AsyncProtocol::factory(), options), 0.0, 2);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.trace.retransmissions(), 0u);
  // Duplicates are filtered before the inner protocol: the trace is
  // still a valid run with exactly one delivery per message.
  EXPECT_TRUE(result.trace.to_system_run().has_value());
}

TEST(Reliable, ComposesWithFifoUnderLoss) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const SimResult result =
        run_lossy(ReliableProtocol::wrap(FifoProtocol::factory()), 0.25,
                  seed);
    ASSERT_TRUE(result.completed) << result.error;
    const auto run = result.trace.to_user_run();
    ASSERT_TRUE(run.has_value());
    EXPECT_TRUE(satisfies(*run, fifo())) << "seed " << seed;
  }
}

TEST(Reliable, ComposesWithCausalUnderLoss) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const SimResult result = run_lossy(
        ReliableProtocol::wrap(CausalRstProtocol::factory()), 0.25, seed);
    ASSERT_TRUE(result.completed) << result.error;
    const auto run = result.trace.to_user_run();
    ASSERT_TRUE(run.has_value());
    EXPECT_TRUE(in_causal(*run)) << "seed " << seed;
  }
}

TEST(Reliable, ComposesWithSequencerUnderLoss) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const SimResult result = run_lossy(
        ReliableProtocol::wrap(SyncSequencerProtocol::factory()), 0.2,
        seed, 50);
    ASSERT_TRUE(result.completed) << result.error;
    const auto run = result.trace.to_user_run();
    ASSERT_TRUE(run.has_value());
    EXPECT_TRUE(in_sync(*run)) << "seed " << seed;
  }
}

TEST(Reliable, DuplicatesSuppressedAtHigherLayer) {
  // Inner protocols must see each packet once even when ACK loss causes
  // duplicate transmissions: duplicate arrivals exist at the engine but
  // every message is delivered exactly once (trace validation would
  // reject double deliveries).
  const SimResult result =
      run_lossy(ReliableProtocol::wrap(AsyncProtocol::factory()), 0.35, 9);
  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_GT(result.trace.duplicate_arrivals(), 0u);
  EXPECT_TRUE(result.trace.to_system_run().has_value());
}

TEST(Reliable, GiveUpBoundStopsRetransmitting) {
  ReliableOptions options;
  options.max_retransmissions = 1;
  const SimResult result = run_lossy(
      ReliableProtocol::wrap(AsyncProtocol::factory(), options), 0.6, 3);
  // With a give-up bound and heavy loss, some message is abandoned.
  EXPECT_FALSE(result.completed);
}

TEST(Reliable, RetransmissionsScaleWithLoss) {
  double previous = -1;
  for (double loss : {0.05, 0.2, 0.4}) {
    const SimResult result = run_lossy(
        ReliableProtocol::wrap(AsyncProtocol::factory()), loss, 11);
    ASSERT_TRUE(result.completed);
    const auto retx = static_cast<double>(result.trace.retransmissions());
    EXPECT_GT(retx, previous);
    previous = retx;
  }
}

TEST(Reliable, TimerNamespacesDoNotCollide) {
  // An inner protocol that uses its own timers still works when wrapped.
  class TimerUser final : public Protocol {
   public:
    explicit TimerUser(Host& host) : host_(host) {}
    void on_invoke(const Message& m) override {
      held_.push_back(m.id);
      host_.set_timer(0.5, m.id);  // delay every send by half a unit
    }
    void on_timer(std::uint64_t cookie) override {
      for (auto it = held_.begin(); it != held_.end(); ++it) {
        if (*it == cookie) {
          Packet pkt;
          pkt.dst = host_.message(*it).dst;
          pkt.user_msg = *it;
          host_.send_packet(std::move(pkt));
          held_.erase(it);
          return;
        }
      }
    }
    void on_packet(const Packet& packet) override {
      if (!packet.is_control) host_.deliver(packet.user_msg);
    }
    std::string name() const override { return "timer-user"; }

   private:
    Host& host_;
    std::vector<MessageId> held_;
  };
  const auto factory = [](Host& host) {
    return std::make_unique<TimerUser>(host);
  };
  const SimResult result =
      run_lossy(ReliableProtocol::wrap(factory), 0.2, 13);
  EXPECT_TRUE(result.completed) << result.error;
}

}  // namespace
}  // namespace msgorder
