// Theorems 2, 3, 4 and the Section 4.3 table: the classification
// algorithm on the canonical specifications.
#include <gtest/gtest.h>

#include "src/spec/classify.hpp"
#include "src/spec/library.hpp"
#include "src/spec/parser.hpp"

namespace msgorder {
namespace {

constexpr UserEventKind S = UserEventKind::kSend;
constexpr UserEventKind R = UserEventKind::kDeliver;

TEST(Classify, CausalVariantsAreTagged) {
  for (const ForbiddenPredicate& p :
       {causal_ordering(), causal_ordering_b1(), causal_ordering_b3()}) {
    const Classification c = classify(p);
    EXPECT_EQ(c.protocol_class, ProtocolClass::kTagged) << p.to_string();
    EXPECT_EQ(*c.min_order, 1u);
  }
}

TEST(Classify, FifoIsTagged) {
  EXPECT_EQ(classify(fifo()).protocol_class, ProtocolClass::kTagged);
}

TEST(Classify, AsyncZooIsTagless) {
  for (const ForbiddenPredicate& p : async_zoo()) {
    const Classification c = classify(p);
    EXPECT_EQ(c.protocol_class, ProtocolClass::kTagless) << p.to_string();
    EXPECT_EQ(*c.min_order, 0u);
  }
}

TEST(Classify, CrownsAreGeneral) {
  for (std::size_t k = 2; k <= 6; ++k) {
    const Classification c = classify(sync_crown(k));
    EXPECT_EQ(c.protocol_class, ProtocolClass::kGeneral);
    EXPECT_EQ(*c.min_order, k);
  }
}

TEST(Classify, KWeakerIsTagged) {
  for (std::size_t k = 0; k <= 4; ++k) {
    EXPECT_EQ(classify(k_weaker_causal(k)).protocol_class,
              ProtocolClass::kTagged);
  }
}

TEST(Classify, FlushFamilyIsTagged) {
  EXPECT_EQ(classify(local_forward_flush()).protocol_class,
            ProtocolClass::kTagged);
  EXPECT_EQ(classify(global_forward_flush()).protocol_class,
            ProtocolClass::kTagged);
  EXPECT_EQ(classify(local_backward_flush()).protocol_class,
            ProtocolClass::kTagged);
  EXPECT_EQ(classify(two_way_flush()), ProtocolClass::kTagged);
}

TEST(Classify, HandoffNeedsControlMessages) {
  EXPECT_EQ(classify(mobile_handoff()).protocol_class,
            ProtocolClass::kGeneral);
}

TEST(Classify, ReceiveSecondBeforeFirstNotImplementable) {
  const Classification c = classify(receive_second_before_first());
  EXPECT_EQ(c.protocol_class, ProtocolClass::kNotImplementable);
  EXPECT_FALSE(c.has_cycle);
  EXPECT_FALSE(c.min_order.has_value());
}

TEST(Classify, LogicallySynchronousCompositeIsGeneral) {
  EXPECT_EQ(classify(logically_synchronous(4)), ProtocolClass::kGeneral);
}

TEST(Classify, CompositeTakesMostDemanding) {
  CompositeSpec spec;
  spec.predicates = {causal_ordering(), sync_crown(2)};
  EXPECT_EQ(classify(spec), ProtocolClass::kGeneral);
  spec.predicates = {causal_ordering(), async_zoo()[0]};
  EXPECT_EQ(classify(spec), ProtocolClass::kTagged);
  spec.predicates = {async_zoo()[0]};
  EXPECT_EQ(classify(spec), ProtocolClass::kTagless);
  spec.predicates = {causal_ordering(), receive_second_before_first()};
  EXPECT_EQ(classify(spec), ProtocolClass::kNotImplementable);
}

TEST(Classify, UnsatisfiablePredicateIsTagless) {
  // Forbidding x.r |> x.s forbids nothing: X_B = X_async.
  const Classification c = classify(make_predicate(1, {{0, R, 0, S}}));
  EXPECT_EQ(c.protocol_class, ProtocolClass::kTagless);
  EXPECT_EQ(c.normalized.triviality, NormalTriviality::kUnsatisfiable);
}

TEST(Classify, TautologicalPredicateNotImplementable) {
  // Forbidding x.s |> x.r (always true) forbids every message.
  const Classification c = classify(make_predicate(1, {{0, S, 0, R}}));
  EXPECT_EQ(c.protocol_class, ProtocolClass::kNotImplementable);
  EXPECT_EQ(c.normalized.triviality, NormalTriviality::kTautological);
}

TEST(Classify, WitnessCycleHasReportedOrder) {
  for (const NamedSpec& spec : spec_zoo()) {
    const Classification c = classify(spec.predicate);
    if (!c.has_cycle) continue;
    ASSERT_TRUE(c.witness.has_value());
    EXPECT_EQ(c.witness->order, *c.min_order);
  }
}

TEST(Classify, MixedOrdersPickMinimum) {
  // Causal 2-cycle (order 1) plus an order-0 structure: tagless wins.
  ForbiddenPredicate p = make_predicate(
      4, {{0, S, 1, S}, {1, R, 0, R}, {2, S, 3, S}, {3, S, 2, S}});
  EXPECT_EQ(classify(p).protocol_class, ProtocolClass::kTagless);
}

TEST(Classify, ChainPlusCrownIsGeneral) {
  // A crown with an extra acyclic tail stays general (the tail adds no
  // lower-order cycle).
  ForbiddenPredicate p = sync_crown(3);
  p.arity = 4;
  p.conjuncts.push_back({3, S, 0, S});
  EXPECT_EQ(classify(p).protocol_class, ProtocolClass::kGeneral);
}

TEST(Classify, SpecZooMatchesPaperExpectations) {
  for (const NamedSpec& spec : spec_zoo()) {
    EXPECT_EQ(classify(spec.predicate).protocol_class, spec.expected)
        << spec.name;
  }
}

TEST(Classify, ParsedMobileHandoffShape) {
  const auto r = parse_predicate(
      "(x.s |> y.r) & (y.s |> x.r) where color(x)=2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(classify(*r.predicate).protocol_class,
            ProtocolClass::kGeneral);
}

TEST(Classify, ToStringMentionsClassAndOrder) {
  const std::string text = classify(causal_ordering()).to_string();
  EXPECT_NE(text.find("tagged"), std::string::npos);
  EXPECT_NE(text.find("min order 1"), std::string::npos);
}

TEST(ProtocolClassNames, AllDistinct) {
  EXPECT_EQ(to_string(ProtocolClass::kTagless), "tagless");
  EXPECT_EQ(to_string(ProtocolClass::kTagged), "tagged");
  EXPECT_EQ(to_string(ProtocolClass::kGeneral), "general");
  EXPECT_EQ(to_string(ProtocolClass::kNotImplementable),
            "not-implementable");
}

}  // namespace
}  // namespace msgorder
