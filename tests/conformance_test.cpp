// The cross-product conformance matrix: every shipped protocol against
// every zoo specification.  A protocol of a stronger class must satisfy
// every spec its limit set is contained in (Theorem 1's containments made
// operational); weaker protocols must *fail* strictly stronger specs on
// some seed (showing the specs are not vacuous).
#include <gtest/gtest.h>

#include "src/checker/limit_sets.hpp"
#include "src/checker/violation.hpp"
#include "src/protocols/registry.hpp"
#include "src/spec/library.hpp"
#include "tests/sim_harness.hpp"

namespace msgorder {
namespace {

class ConformanceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConformanceTest, SyncProtocolsSatisfyEverythingImplementable) {
  const std::uint64_t seed = GetParam();
  for (const RegisteredProtocol& rp : standard_protocols()) {
    if (rp.name != "sync-sequencer" && rp.name != "sync-token" &&
        rp.name != "sync-locks") {
      continue;
    }
    const auto result = run_protocol(rp.factory, 4, 60, seed,
                                     /*red_fraction=*/0.3);
    for (const NamedSpec& spec : spec_zoo()) {
      if (spec.expected == ProtocolClass::kNotImplementable) continue;
      EXPECT_TRUE(satisfies(result.run, spec.predicate))
          << rp.name << " vs " << spec.name << " seed " << seed;
    }
  }
}

TEST_P(ConformanceTest, CausalProtocolsSatisfyTaggedAndTaglessSpecs) {
  const std::uint64_t seed = GetParam();
  for (const RegisteredProtocol& rp : standard_protocols()) {
    if (rp.name != "causal-rst" && rp.name != "causal-ses") continue;
    const auto result = run_protocol(rp.factory, 4, 80, seed,
                                     /*red_fraction=*/0.3);
    for (const NamedSpec& spec : spec_zoo()) {
      if (spec.expected != ProtocolClass::kTagged &&
          spec.expected != ProtocolClass::kTagless) {
        continue;
      }
      EXPECT_TRUE(satisfies(result.run, spec.predicate))
          << rp.name << " vs " << spec.name << " seed " << seed;
    }
  }
}

TEST_P(ConformanceTest, EveryProtocolSatisfiesTaglessSpecs) {
  const std::uint64_t seed = GetParam();
  for (const RegisteredProtocol& rp : standard_protocols()) {
    const auto result = run_protocol(rp.factory, 4, 60, seed);
    for (const NamedSpec& spec : spec_zoo()) {
      if (spec.expected != ProtocolClass::kTagless) continue;
      EXPECT_TRUE(satisfies(result.run, spec.predicate))
          << rp.name << " vs " << spec.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConformanceTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ConformanceSeparation, AsyncEventuallyViolatesCausal) {
  bool violated = false;
  for (std::uint64_t seed = 1; seed <= 20 && !violated; ++seed) {
    const auto result = run_protocol(
        standard_protocols()[0].factory, 4, 150, seed, 0.0, 1, 0.1);
    violated = !in_causal(result.run);
  }
  EXPECT_TRUE(violated);
}

// Helper to pull a factory from the registry by name.
ProtocolFactory factory_named(const std::string& name) {
  for (const RegisteredProtocol& rp : standard_protocols()) {
    if (rp.name == name) return rp.factory;
  }
  ADD_FAILURE() << name << " not registered";
  return {};
}

TEST(ConformanceSeparation, CausalEventuallyViolatesSync) {
  bool violated = false;
  for (std::uint64_t seed = 1; seed <= 20 && !violated; ++seed) {
    const auto result =
        run_protocol(factory_named("causal-rst"), 4, 120, seed);
    violated = !in_sync(result.run);
  }
  EXPECT_TRUE(violated);
}

TEST(ConformanceSeparation, FifoEventuallyViolatesGlobalFlushSpec) {
  // FIFO is channel-local: a red message can still be overtaken across
  // channels, violating the *global* forward flush spec.
  ProtocolFactory fifo_factory;
  for (const RegisteredProtocol& rp : standard_protocols()) {
    if (rp.name == "fifo") fifo_factory = rp.factory;
  }
  bool violated = false;
  for (std::uint64_t seed = 1; seed <= 30 && !violated; ++seed) {
    const auto result = run_protocol(fifo_factory, 4, 150, seed,
                                     /*red_fraction=*/0.4);
    violated = !satisfies(result.run, global_forward_flush());
  }
  EXPECT_TRUE(violated);
}

}  // namespace
}  // namespace msgorder
