#include <gtest/gtest.h>

#include "src/spec/library.hpp"
#include "src/spec/parser.hpp"

namespace msgorder {
namespace {

TEST(Parser, CausalOrdering) {
  const auto r = parse_predicate("(x.s |> y.s) & (y.r |> x.r)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.predicate->arity, 2u);
  EXPECT_EQ(r.predicate->conjuncts, causal_ordering().conjuncts);
}

TEST(Parser, AlternativeRelationSymbols) {
  for (const char* text :
       {"x.s < y.s & y.r < x.r", "x.s -> y.s & y.r -> x.r",
        "(x.s<y.s)&(y.r<x.r)"}) {
    const auto r = parse_predicate(text);
    ASSERT_TRUE(r.ok()) << text << ": " << r.error;
    EXPECT_EQ(r.predicate->conjuncts, causal_ordering().conjuncts);
  }
}

TEST(Parser, VariablesRegisteredInOrder) {
  const auto r = parse_predicate("(b.r |> a.s)");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.predicate->var_names.size(), 2u);
  EXPECT_EQ(r.predicate->var_names[0], "b");
  EXPECT_EQ(r.predicate->var_names[1], "a");
  EXPECT_EQ(r.predicate->conjuncts[0].lhs, 0u);
  EXPECT_EQ(r.predicate->conjuncts[0].rhs, 1u);
  EXPECT_EQ(r.predicate->conjuncts[0].p, UserEventKind::kDeliver);
  EXPECT_EQ(r.predicate->conjuncts[0].q, UserEventKind::kSend);
}

TEST(Parser, FifoWithWhereClause) {
  const auto r = parse_predicate(
      "(x.s |> y.s) & (y.r |> x.r) "
      "where process(x.s)=process(y.s), process(x.r)=process(y.r)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.predicate->process_constraints, fifo().process_constraints);
}

TEST(Parser, ColorConstraint) {
  const auto r = parse_predicate(
      "(x.s |> y.s) & (y.r |> x.r) where color(y)=1");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.predicate->color_constraints.size(), 1u);
  EXPECT_EQ(r.predicate->color_constraints[0].var, 1u);
  EXPECT_EQ(r.predicate->color_constraints[0].color, 1);
}

TEST(Parser, NegativeColor) {
  const auto r = parse_predicate("(x.s |> y.s) where color(x)=-3");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.predicate->color_constraints[0].color, -3);
}

TEST(Parser, MixedConstraints) {
  const auto r = parse_predicate(
      "(x.s |> y.s) & (y.r |> x.r) "
      "where color(y)=1, process(x.s)=process(y.s)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.predicate->color_constraints.size(), 1u);
  EXPECT_EQ(r.predicate->process_constraints.size(), 1u);
}

TEST(Parser, LongCrownPredicate) {
  const auto r = parse_predicate(
      "(x1.s |> x2.r) & (x2.s |> x3.r) & (x3.s |> x1.r)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.predicate->arity, 3u);
  EXPECT_EQ(r.predicate->conjuncts.size(), 3u);
}

TEST(Parser, WhitespaceInsensitive) {
  const auto r = parse_predicate("  ( x.s   |>y.s )&(y.r|> x.r)  ");
  ASSERT_TRUE(r.ok()) << r.error;
}

TEST(Parser, ErrorMissingKind) {
  const auto r = parse_predicate("(x |> y.s)");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("'.'"), std::string::npos);
}

TEST(Parser, ErrorBadKind) {
  const auto r = parse_predicate("(x.q |> y.s)");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, ErrorMissingRelation) {
  EXPECT_FALSE(parse_predicate("(x.s y.s)").ok());
}

TEST(Parser, ErrorUnbalancedParen) {
  EXPECT_FALSE(parse_predicate("(x.s |> y.s").ok());
}

TEST(Parser, ErrorTrailingGarbage) {
  const auto r = parse_predicate("(x.s |> y.s) garbage");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("trailing"), std::string::npos);
}

TEST(Parser, ErrorEmptyInput) {
  EXPECT_FALSE(parse_predicate("").ok());
  EXPECT_FALSE(parse_predicate("   ").ok());
}

TEST(Parser, ErrorBadConstraint) {
  EXPECT_FALSE(
      parse_predicate("(x.s |> y.s) where banana(x)=1").ok());
  EXPECT_FALSE(parse_predicate("(x.s |> y.s) where color(x)=red").ok());
}

TEST(Parser, ErrorCarriesOffsetLineColumnAndLexeme) {
  const auto r = parse_predicate("(x.s |> y.t)");
  ASSERT_FALSE(r.ok());
  ASSERT_TRUE(r.detail.has_value());
  EXPECT_EQ(r.detail->span.offset, 10u);  // the 't'
  EXPECT_EQ(r.detail->span.line, 1u);
  EXPECT_EQ(r.detail->span.column, 11u);
  EXPECT_EQ(r.detail->lexeme, "t");
  EXPECT_NE(r.error.find("1:11:"), std::string::npos);
  EXPECT_NE(r.error.find("offset 10"), std::string::npos);
}

TEST(Parser, ErrorOnSecondLineReportsItsLine) {
  const auto r = parse_predicate("(x.s |> y.s) &\n(y.r |> )");
  ASSERT_FALSE(r.ok());
  ASSERT_TRUE(r.detail.has_value());
  EXPECT_EQ(r.detail->span.line, 2u);
  EXPECT_EQ(r.detail->lexeme, ")");
}

TEST(Parser, WhereRejectsVariableNeverUsedInAConjunct) {
  for (const char* text :
       {"(x.s |> y.s) & (y.r |> x.r) where color(z)=1",
        "(x.s |> y.s) & (y.r |> x.r) where process(z.s)=process(y.s)"}) {
    const auto r = parse_predicate(text);
    ASSERT_FALSE(r.ok()) << text;
    EXPECT_NE(r.error.find("is not used in any conjunct"),
              std::string::npos)
        << r.error;
    EXPECT_EQ(r.detail->lexeme, "z");
  }
}

TEST(Parser, RecordsConjunctAndConstraintSpans) {
  const std::string text =
      "(x.s |> y.s) & (y.r |> x.r) where color(y)=7";
  const auto r = parse_predicate(text);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.source.conjuncts.size(), 2u);
  EXPECT_EQ(text.substr(r.source.conjuncts[0].offset,
                        r.source.conjuncts[0].length),
            "(x.s |> y.s)");
  EXPECT_EQ(text.substr(r.source.conjuncts[1].offset,
                        r.source.conjuncts[1].length),
            "(y.r |> x.r)");
  ASSERT_EQ(r.source.color_constraints.size(), 1u);
  EXPECT_EQ(text.substr(r.source.color_constraints[0].offset,
                        r.source.color_constraints[0].length),
            "color(y)=7");
  ASSERT_EQ(r.source.var_first_use.size(), 2u);
  EXPECT_EQ(text.substr(r.source.var_first_use[0].offset,
                        r.source.var_first_use[0].length),
            "x");
  EXPECT_EQ(text.substr(r.source.var_first_use[1].offset,
                        r.source.var_first_use[1].length),
            "y");
}

TEST(Parser, SpecPieceSpansAreRelativeToTheWholeText) {
  const std::string text =
      "(x.s |> y.s) & (y.r |> x.r);\n(a.s |> b.r) & (b.s |> a.r)";
  const auto r = parse_spec(text);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.sources.size(), 2u);
  EXPECT_EQ(r.sources[0].span.line, 1u);
  EXPECT_EQ(r.sources[1].span.line, 2u);
  EXPECT_EQ(text.substr(r.sources[1].span.offset, r.sources[1].span.length),
            "(a.s |> b.r) & (b.s |> a.r)");
}

TEST(Parser, SpecErrorSpanIsRelativeToTheWholeText) {
  const auto r = parse_spec("(x.s |> y.s) & (y.r |> x.r);\n(a.s |> b.q)");
  ASSERT_FALSE(r.ok());
  ASSERT_TRUE(r.detail.has_value());
  EXPECT_EQ(r.detail->span.line, 2u);
  EXPECT_EQ(r.detail->lexeme, "q");
}

TEST(Parser, DisjunctionDesugarsToSeparatePredicatesSharingAGroup) {
  const std::string text =
      "(x.s |> y.s) & (y.r |> x.r) | a.s |> b.s where color(a) = 1;\n"
      "(p.s |> q.s) & (q.r |> p.r)";
  const auto r = parse_spec(text);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.spec->predicates.size(), 3u);
  EXPECT_TRUE(r.spec->counting.empty());
  // Arms of the first statement share a group; the second statement is
  // its own.
  ASSERT_EQ(r.disjunct_group.size(), 3u);
  EXPECT_EQ(r.disjunct_group[0], r.disjunct_group[1]);
  EXPECT_NE(r.disjunct_group[1], r.disjunct_group[2]);
  // Each arm quantifies its own variables.
  EXPECT_EQ(r.spec->predicates[0].arity, 2u);
  EXPECT_EQ(r.spec->predicates[1].arity, 2u);
  ASSERT_EQ(r.spec->predicates[1].color_constraints.size(), 1u);
  EXPECT_EQ(r.spec->predicates[1].color_constraints[0].color, 1);
  EXPECT_EQ(text.substr(r.sources[1].span.offset, r.sources[1].span.length),
            "a.s |> b.s where color(a) = 1");
}

TEST(Parser, PipeInsideRelationIsNotADisjunction) {
  const auto r = parse_spec("(x.s |> y.s) & (y.r |> x.r)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.spec->predicates.size(), 1u);
}

TEST(Parser, EmptyDisjunctIsAnError) {
  const auto r = parse_spec("(x.s |> y.s) & (y.r |> x.r) | ");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("empty disjunct"), std::string::npos);
}

TEST(Parser, CountingStatements) {
  const auto r =
      parse_spec("concurrent <= 3;\nconcurrent ( color = -2 ) <= 0");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.spec->predicates.empty());
  ASSERT_EQ(r.spec->counting.size(), 2u);
  EXPECT_FALSE(r.spec->counting[0].color.has_value());
  EXPECT_EQ(r.spec->counting[0].limit, 3u);
  EXPECT_EQ(r.spec->counting[1].color, std::optional<int>(-2));
  EXPECT_EQ(r.spec->counting[1].limit, 0u);
  ASSERT_EQ(r.counting_sources.size(), 2u);
  EXPECT_EQ(r.counting_sources[1].line, 2u);
}

TEST(Parser, CountingMixesWithPredicates) {
  const auto r = parse_spec(
      "(x.s |> y.s) & (y.r |> x.r); concurrent(color = 1) <= 2");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.spec->predicates.size(), 1u);
  EXPECT_EQ(r.spec->counting.size(), 1u);
}

TEST(Parser, CountingErrors) {
  EXPECT_FALSE(parse_spec("concurrent <= -1").ok());
  EXPECT_FALSE(parse_spec("concurrent < 3").ok());
  EXPECT_FALSE(parse_spec("concurrent(color) <= 3").ok());
  EXPECT_FALSE(parse_spec("concurrent <= 3 trailing").ok());
  const auto r = parse_spec("concurrent <= ");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("non-negative integer"), std::string::npos);
}

TEST(Parser, RoundTripThroughToString) {
  // to_string output parses back to the same predicate (default names).
  const ForbiddenPredicate original = fifo();
  const auto r = parse_predicate(original.to_string());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.predicate->conjuncts, original.conjuncts);
  EXPECT_EQ(r.predicate->process_constraints,
            original.process_constraints);
}

}  // namespace
}  // namespace msgorder
