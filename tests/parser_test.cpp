#include <gtest/gtest.h>

#include "src/spec/library.hpp"
#include "src/spec/parser.hpp"

namespace msgorder {
namespace {

TEST(Parser, CausalOrdering) {
  const auto r = parse_predicate("(x.s |> y.s) & (y.r |> x.r)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.predicate->arity, 2u);
  EXPECT_EQ(r.predicate->conjuncts, causal_ordering().conjuncts);
}

TEST(Parser, AlternativeRelationSymbols) {
  for (const char* text :
       {"x.s < y.s & y.r < x.r", "x.s -> y.s & y.r -> x.r",
        "(x.s<y.s)&(y.r<x.r)"}) {
    const auto r = parse_predicate(text);
    ASSERT_TRUE(r.ok()) << text << ": " << r.error;
    EXPECT_EQ(r.predicate->conjuncts, causal_ordering().conjuncts);
  }
}

TEST(Parser, VariablesRegisteredInOrder) {
  const auto r = parse_predicate("(b.r |> a.s)");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.predicate->var_names.size(), 2u);
  EXPECT_EQ(r.predicate->var_names[0], "b");
  EXPECT_EQ(r.predicate->var_names[1], "a");
  EXPECT_EQ(r.predicate->conjuncts[0].lhs, 0u);
  EXPECT_EQ(r.predicate->conjuncts[0].rhs, 1u);
  EXPECT_EQ(r.predicate->conjuncts[0].p, UserEventKind::kDeliver);
  EXPECT_EQ(r.predicate->conjuncts[0].q, UserEventKind::kSend);
}

TEST(Parser, FifoWithWhereClause) {
  const auto r = parse_predicate(
      "(x.s |> y.s) & (y.r |> x.r) "
      "where process(x.s)=process(y.s), process(x.r)=process(y.r)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.predicate->process_constraints, fifo().process_constraints);
}

TEST(Parser, ColorConstraint) {
  const auto r = parse_predicate(
      "(x.s |> y.s) & (y.r |> x.r) where color(y)=1");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.predicate->color_constraints.size(), 1u);
  EXPECT_EQ(r.predicate->color_constraints[0].var, 1u);
  EXPECT_EQ(r.predicate->color_constraints[0].color, 1);
}

TEST(Parser, NegativeColor) {
  const auto r = parse_predicate("(x.s |> y.s) where color(x)=-3");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.predicate->color_constraints[0].color, -3);
}

TEST(Parser, MixedConstraints) {
  const auto r = parse_predicate(
      "(x.s |> y.s) & (y.r |> x.r) "
      "where color(y)=1, process(x.s)=process(y.s)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.predicate->color_constraints.size(), 1u);
  EXPECT_EQ(r.predicate->process_constraints.size(), 1u);
}

TEST(Parser, LongCrownPredicate) {
  const auto r = parse_predicate(
      "(x1.s |> x2.r) & (x2.s |> x3.r) & (x3.s |> x1.r)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.predicate->arity, 3u);
  EXPECT_EQ(r.predicate->conjuncts.size(), 3u);
}

TEST(Parser, WhitespaceInsensitive) {
  const auto r = parse_predicate("  ( x.s   |>y.s )&(y.r|> x.r)  ");
  ASSERT_TRUE(r.ok()) << r.error;
}

TEST(Parser, ErrorMissingKind) {
  const auto r = parse_predicate("(x |> y.s)");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("'.'"), std::string::npos);
}

TEST(Parser, ErrorBadKind) {
  const auto r = parse_predicate("(x.q |> y.s)");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, ErrorMissingRelation) {
  EXPECT_FALSE(parse_predicate("(x.s y.s)").ok());
}

TEST(Parser, ErrorUnbalancedParen) {
  EXPECT_FALSE(parse_predicate("(x.s |> y.s").ok());
}

TEST(Parser, ErrorTrailingGarbage) {
  const auto r = parse_predicate("(x.s |> y.s) garbage");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("trailing"), std::string::npos);
}

TEST(Parser, ErrorEmptyInput) {
  EXPECT_FALSE(parse_predicate("").ok());
  EXPECT_FALSE(parse_predicate("   ").ok());
}

TEST(Parser, ErrorBadConstraint) {
  EXPECT_FALSE(
      parse_predicate("(x.s |> y.s) where banana(x)=1").ok());
  EXPECT_FALSE(parse_predicate("(x.s |> y.s) where color(x)=red").ok());
}

TEST(Parser, RoundTripThroughToString) {
  // to_string output parses back to the same predicate (default names).
  const ForbiddenPredicate original = fifo();
  const auto r = parse_predicate(original.to_string());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.predicate->conjuncts, original.conjuncts);
  EXPECT_EQ(r.predicate->process_constraints,
            original.process_constraints);
}

}  // namespace
}  // namespace msgorder
