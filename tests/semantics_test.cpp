// Section 3.2: enabled-set protocols, property P1 and the liveness
// condition, on the three canonical limit protocols.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/semantics/limit_protocols.hpp"

namespace msgorder {
namespace {

SystemEvent ev(MessageId m, EventKind k) { return {m, k}; }

std::vector<Message> crossing_universe() {
  return {{0, 0, 1, 0}, {1, 1, 0, 0}};
}

bool contains(const std::vector<SystemEvent>& events, SystemEvent e) {
  return std::find(events.begin(), events.end(), e) != events.end();
}

TEST(EnabledSets, P1InvokesAndReceivesAlwaysEnabled) {
  const TaglessAll protocol;
  SystemRun run(crossing_universe(), 2);
  auto enabled = enabled_events(protocol, run, 0);
  EXPECT_TRUE(contains(enabled, ev(0, EventKind::kInvoke)));
  run = run.executed(ev(0, EventKind::kInvoke));
  run = run.executed(ev(0, EventKind::kSend));
  enabled = enabled_events(protocol, run, 1);
  EXPECT_TRUE(contains(enabled, ev(0, EventKind::kReceive)));
}

TEST(EnabledSets, ControllablesSubsetOfPending) {
  // Whatever the protocol, enabled controllables must be pending S/D.
  const TaglessAll tagless;
  const TaggedCausal tagged;
  const GeneralSerializer general;
  SystemRun run(crossing_universe(), 2);
  run = run.executed(ev(0, EventKind::kInvoke));
  run = run.executed(ev(1, EventKind::kInvoke));
  for (const EnabledSetProtocol* p :
       std::initializer_list<const EnabledSetProtocol*>{&tagless, &tagged,
                                                        &general}) {
    for (ProcessId i = 0; i < 2; ++i) {
      const auto ctl = run.controllable(i);
      for (const SystemEvent& e : p->enabled_controllables(run, i)) {
        EXPECT_TRUE(contains(ctl, e)) << p->name();
      }
    }
  }
}

TEST(EnabledSets, LivenessHoldsInitially) {
  const TaglessAll protocol;
  SystemRun run(crossing_universe(), 2);
  EXPECT_TRUE(liveness_holds_at(protocol, run));
}

TEST(TaglessAll, EnablesEverythingPending) {
  const TaglessAll protocol;
  SystemRun run(crossing_universe(), 2);
  run = run.executed(ev(0, EventKind::kInvoke));
  const auto enabled = protocol.enabled_controllables(run, 0);
  EXPECT_TRUE(contains(enabled, ev(0, EventKind::kSend)));
  EXPECT_EQ(protocol.knowledge_class(), KnowledgeClass::kTagless);
}

TEST(TaggedCausal, DelaysCausallyLaterDelivery) {
  // m0: P0 -> P2 and then m1: P0 -> P1 -> relayed knowledge m2: P1 -> P2;
  // simpler canonical case: m0 and m2 both to P2, m0.s -> m2.s, m2
  // received first: its delivery must be disabled until m0 delivered.
  std::vector<Message> universe = {{0, 0, 2, 0}, {1, 0, 1, 0}, {2, 1, 2, 0}};
  SystemRun run(universe, 3);
  for (const SystemEvent& e :
       {ev(0, EventKind::kInvoke), ev(0, EventKind::kSend),
        ev(1, EventKind::kInvoke), ev(1, EventKind::kSend),
        ev(1, EventKind::kReceive), ev(1, EventKind::kDeliver),
        ev(2, EventKind::kInvoke), ev(2, EventKind::kSend),
        ev(2, EventKind::kReceive)}) {
    run = run.executed(e);
  }
  const TaggedCausal protocol;
  // m0.s -> m1.s -> m1.r -> m2.s, and m0 (to P2) is undelivered: the
  // delivery of m2 at P2 must be inhibited.
  auto enabled = protocol.enabled_controllables(run, 2);
  EXPECT_FALSE(contains(enabled, ev(2, EventKind::kDeliver)));
  // After m0 is received and delivered, m2 becomes deliverable.
  run = run.executed(ev(0, EventKind::kReceive));
  enabled = protocol.enabled_controllables(run, 2);
  EXPECT_TRUE(contains(enabled, ev(0, EventKind::kDeliver)));
  run = run.executed(ev(0, EventKind::kDeliver));
  enabled = protocol.enabled_controllables(run, 2);
  EXPECT_TRUE(contains(enabled, ev(2, EventKind::kDeliver)));
}

TEST(TaggedCausal, ConcurrentSendsUnconstrained) {
  const TaggedCausal protocol;
  SystemRun run(crossing_universe(), 2);
  run = run.executed(ev(0, EventKind::kInvoke));
  run = run.executed(ev(1, EventKind::kInvoke));
  EXPECT_TRUE(contains(protocol.enabled_controllables(run, 0),
                       ev(0, EventKind::kSend)));
  EXPECT_TRUE(contains(protocol.enabled_controllables(run, 1),
                       ev(1, EventKind::kSend)));
}

TEST(GeneralSerializer, OnlySmallestPendingSendEnabled) {
  const GeneralSerializer protocol;
  SystemRun run(crossing_universe(), 2);
  run = run.executed(ev(0, EventKind::kInvoke));
  run = run.executed(ev(1, EventKind::kInvoke));
  EXPECT_TRUE(contains(protocol.enabled_controllables(run, 0),
                       ev(0, EventKind::kSend)));
  EXPECT_TRUE(protocol.enabled_controllables(run, 1).empty());
}

TEST(GeneralSerializer, SendsBlockedWhileExchangeOpen) {
  const GeneralSerializer protocol;
  SystemRun run(crossing_universe(), 2);
  run = run.executed(ev(0, EventKind::kInvoke));
  run = run.executed(ev(1, EventKind::kInvoke));
  run = run.executed(ev(0, EventKind::kSend));
  // Message 0 is open: no sends anywhere, but its delivery path runs.
  EXPECT_TRUE(protocol.enabled_controllables(run, 1).empty());
  run = run.executed(ev(0, EventKind::kReceive));
  EXPECT_TRUE(contains(protocol.enabled_controllables(run, 1),
                       ev(0, EventKind::kDeliver)));
  run = run.executed(ev(0, EventKind::kDeliver));
  // Exchange closed: message 1's send becomes the smallest pending.
  EXPECT_TRUE(contains(protocol.enabled_controllables(run, 1),
                       ev(1, EventKind::kSend)));
}

TEST(GeneralSerializer, LivenessAcrossAFullExchange) {
  const GeneralSerializer protocol;
  SystemRun run(crossing_universe(), 2);
  for (const SystemEvent& e :
       {ev(0, EventKind::kInvoke), ev(1, EventKind::kInvoke),
        ev(0, EventKind::kSend), ev(0, EventKind::kReceive),
        ev(0, EventKind::kDeliver), ev(1, EventKind::kSend),
        ev(1, EventKind::kReceive), ev(1, EventKind::kDeliver)}) {
    EXPECT_TRUE(liveness_holds_at(protocol, run));
    run = run.executed(e);
  }
  EXPECT_TRUE(run.quiescent());
}

TEST(KnowledgeClassNames, Distinct) {
  EXPECT_EQ(to_string(KnowledgeClass::kGeneral), "general");
  EXPECT_EQ(to_string(KnowledgeClass::kTagged), "tagged");
  EXPECT_EQ(to_string(KnowledgeClass::kTagless), "tagless");
}

}  // namespace
}  // namespace msgorder
