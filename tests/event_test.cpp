#include <gtest/gtest.h>

#include "src/poset/event.hpp"

namespace msgorder {
namespace {

TEST(EventKinds, PaperNotation) {
  EXPECT_EQ(kind_name(EventKind::kInvoke), "s*");
  EXPECT_EQ(kind_name(EventKind::kSend), "s");
  EXPECT_EQ(kind_name(EventKind::kReceive), "r*");
  EXPECT_EQ(kind_name(EventKind::kDeliver), "r");
  EXPECT_EQ(kind_name(UserEventKind::kSend), "s");
  EXPECT_EQ(kind_name(UserEventKind::kDeliver), "r");
}

TEST(EventKinds, UserProjection) {
  EXPECT_FALSE(is_user_kind(EventKind::kInvoke));
  EXPECT_TRUE(is_user_kind(EventKind::kSend));
  EXPECT_FALSE(is_user_kind(EventKind::kReceive));
  EXPECT_TRUE(is_user_kind(EventKind::kDeliver));
  EXPECT_EQ(to_user_kind(EventKind::kSend), UserEventKind::kSend);
  EXPECT_EQ(to_user_kind(EventKind::kDeliver), UserEventKind::kDeliver);
  EXPECT_EQ(to_system_kind(UserEventKind::kSend), EventKind::kSend);
  EXPECT_EQ(to_system_kind(UserEventKind::kDeliver),
            EventKind::kDeliver);
}

TEST(EventKinds, RoundTrip) {
  for (EventKind k : {EventKind::kSend, EventKind::kDeliver}) {
    EXPECT_EQ(to_system_kind(to_user_kind(k)), k);
  }
}

TEST(Events, ToString) {
  EXPECT_EQ(to_string(SystemEvent{3, EventKind::kReceive}), "x3.r*");
  EXPECT_EQ(to_string(SystemEvent{0, EventKind::kInvoke}), "x0.s*");
  EXPECT_EQ(to_string(UserEvent{7, UserEventKind::kDeliver}), "x7.r");
}

TEST(Events, Equality) {
  const SystemEvent a{1, EventKind::kSend};
  const SystemEvent b{1, EventKind::kSend};
  const SystemEvent c{1, EventKind::kDeliver};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Messages, DefaultsAndEquality) {
  const Message m{4, 1, 2, 0};
  EXPECT_EQ(m.mcast, -1);  // unicast by default
  Message copy = m;
  EXPECT_EQ(m, copy);
  copy.color = 9;
  EXPECT_NE(m, copy);
}

}  // namespace
}  // namespace msgorder
