// Golden tests for the spec static analyzer: one seeded-bad fixture per
// rule ID (tests/lint_fixtures/), a clean pass over the built-in spec
// library and the examples in specs/, and the msgorder.lint/1 artifact.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "src/obs/json.hpp"
#include "src/obs/json_value.hpp"
#include "src/spec/library.hpp"
#include "src/spec/lint.hpp"

namespace msgorder {
namespace {

std::string read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

LintResult lint_fixture(const std::string& name) {
  return lint_file_text(
      read_raw(std::string(LINT_FIXTURE_DIR) + "/" + name));
}

TEST(LintFixtures, UnsatisfiableCrossing) {
  const LintResult r = lint_fixture("bad_unsatisfiable.spec");
  EXPECT_TRUE(r.has_rule("L002"));
  EXPECT_EQ(r.count(LintSeverity::kWarning), 1u);
  EXPECT_EQ(r.spec_class, ProtocolClass::kTagless);
  EXPECT_FALSE(r.clean());
}

TEST(LintFixtures, RedundantConjunct) {
  const LintResult r = lint_fixture("bad_redundant.spec");
  EXPECT_TRUE(r.has_rule("L007"));
  EXPECT_FALSE(r.has_rule("L011"));  // the back edge keeps it cyclic
  EXPECT_EQ(r.spec_class, ProtocolClass::kTagged);
}

TEST(LintFixtures, DeadVariable) {
  const LintResult r = lint_fixture("bad_dead_variable.spec");
  EXPECT_TRUE(r.has_rule("L005"));
  EXPECT_TRUE(r.has_rule("L004"));  // the tautological conjunct killed z
  EXPECT_EQ(r.spec_class, ProtocolClass::kTagged);
}

TEST(LintFixtures, ContradictoryWhere) {
  const LintResult r = lint_fixture("bad_contradictory_where.spec");
  EXPECT_TRUE(r.has_rule("L008"));
  EXPECT_GE(r.count(LintSeverity::kError), 1u);
}

TEST(LintFixtures, DuplicatePredicate) {
  const LintResult r = lint_fixture("bad_duplicate_predicate.spec");
  EXPECT_TRUE(r.has_rule("L010"));
}

TEST(LintFixtures, TautologicalPredicate) {
  const LintResult r = lint_fixture("bad_tautological.spec");
  EXPECT_TRUE(r.has_rule("L003"));
  EXPECT_TRUE(r.has_rule("L004"));
  EXPECT_GE(r.count(LintSeverity::kError), 1u);
}

TEST(LintFixtures, DuplicateConjunct) {
  const LintResult r = lint_fixture("bad_duplicate_conjunct.spec");
  EXPECT_TRUE(r.has_rule("L006"));
  EXPECT_FALSE(r.has_rule("L007"));  // duplicates are not "implied"
}

TEST(LintFixtures, RedundantWhere) {
  const LintResult r = lint_fixture("bad_redundant_where.spec");
  EXPECT_TRUE(r.has_rule("L009"));
  EXPECT_FALSE(r.has_rule("L008"));
}

TEST(LintFixtures, OverStrengthComposite) {
  const LintResult r = lint_fixture("bad_overstrong.spec");
  EXPECT_TRUE(r.has_rule("L013"));
  EXPECT_EQ(r.count(LintSeverity::kHint), 1u);
  EXPECT_EQ(r.spec_class, ProtocolClass::kGeneral);
}

TEST(LintFixtures, ClassMismatch) {
  const LintResult r = lint_fixture("bad_class_mismatch.spec");
  EXPECT_TRUE(r.has_rule("L014"));
  EXPECT_GE(r.count(LintSeverity::kError), 1u);
}

TEST(LintFixtures, NotImplementable) {
  const LintResult r = lint_fixture("bad_not_implementable.spec");
  EXPECT_TRUE(r.has_rule("L011"));
  EXPECT_EQ(r.spec_class, ProtocolClass::kNotImplementable);
}

TEST(LintFixtures, ParseError) {
  const LintResult r = lint_fixture("bad_parse_error.spec");
  EXPECT_FALSE(r.parsed);
  EXPECT_TRUE(r.has_rule("L001"));
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_TRUE(r.diagnostics[0].span.has_value());
}

TEST(LintFixtures, UnknownExpectClass) {
  const LintResult r = lint_fixture("bad_expect_unknown_class.spec");
  EXPECT_TRUE(r.has_rule("L017"));
  EXPECT_GE(r.count(LintSeverity::kError), 1u);
  // The bad pragma carries no intent, so no demotion and no L014.
  EXPECT_FALSE(r.has_rule("L014"));
  ASSERT_FALSE(r.diagnostics.empty());
  const LintDiagnostic& d = r.diagnostics.front();
  EXPECT_EQ(d.rule->id, "L017");
  ASSERT_TRUE(d.span.has_value());
  EXPECT_EQ(d.span->line, 3u);  // the pragma line, not the spec line
  EXPECT_NE(d.message.find("'casual'"), std::string::npos);
  EXPECT_EQ(d.fixit, "# expect: tagged");
}

TEST(LintFixtures, CleanFixturesPass) {
  for (const char* name : {"clean_causal.spec", "clean_fifo.spec"}) {
    const LintResult r = lint_fixture(name);
    EXPECT_TRUE(r.clean()) << name;
    EXPECT_EQ(r.spec_class, ProtocolClass::kTagged) << name;
  }
}

TEST(LintLibrary, EveryZooEntryIsCleanUnderItsDeclaredIntent) {
  for (const NamedSpec& entry : spec_zoo()) {
    LintOptions options;
    options.expected = entry.expected;
    const LintResult r = lint_predicate(entry.predicate, nullptr, options);
    EXPECT_TRUE(r.clean()) << entry.name;
    EXPECT_FALSE(r.has_rule("L014")) << entry.name;
    EXPECT_EQ(r.spec_class, entry.expected) << entry.name;
  }
}

TEST(LintLibrary, CompositeBuildersAreClean) {
  LintOptions tagged;
  tagged.expected = ProtocolClass::kTagged;
  EXPECT_TRUE(lint_spec(two_way_flush(), nullptr, tagged).clean());
  EXPECT_TRUE(lint_spec(global_two_way_flush(), nullptr, tagged).clean());
  LintOptions general;
  general.expected = ProtocolClass::kGeneral;
  EXPECT_TRUE(
      lint_spec(logically_synchronous(5), nullptr, general).clean());
}

TEST(LintLibrary, ExampleSpecFilesAreClean) {
  std::size_t n_files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(SPEC_DIR)) {
    if (entry.path().extension() != ".spec") continue;
    ++n_files;
    const LintResult r = lint_file_text(read_raw(entry.path().string()));
    EXPECT_TRUE(r.parsed) << entry.path();
    EXPECT_TRUE(r.clean()) << entry.path();
  }
  EXPECT_GE(n_files, 7u);
}

TEST(LintFixtures, DeadDisjunct) {
  const LintResult r = lint_fixture("bad_dead_disjunct.spec");
  EXPECT_TRUE(r.has_rule("L015"));
  EXPECT_TRUE(r.has_rule("L002"));  // the dead arm is an order-0 cycle
  EXPECT_EQ(r.spec_class, ProtocolClass::kTagged);
  EXPECT_FALSE(r.clean());
}

TEST(LintFixtures, DegenerateCounting) {
  const LintResult r = lint_fixture("bad_counting_zero.spec");
  EXPECT_TRUE(r.has_rule("L016"));
  EXPECT_EQ(r.spec_class, ProtocolClass::kGeneral);
  EXPECT_FALSE(r.has_rule("L014"));  // the declared 'general' matches
  EXPECT_FALSE(r.clean());
}

TEST(LintCounting, BoundRaisesTheClassWithAnExplanation) {
  const LintResult r =
      lint_text("(x.s |> y.s) & (y.r |> x.r); concurrent <= 4");
  EXPECT_EQ(r.spec_class, ProtocolClass::kGeneral);
  EXPECT_TRUE(r.has_rule("L012"));
  EXPECT_TRUE(r.clean());
}

TEST(LintDisjunction, LiveArmsAreNotFlagged) {
  const LintResult r = lint_text(
      "(x.s |> y.s) & (y.r |> x.r) where color(y) = 1"
      " | (x.s |> y.s) & (y.r |> x.r) where color(x) = 1");
  EXPECT_FALSE(r.has_rule("L015"));
  EXPECT_TRUE(r.clean());
}

TEST(LintExplain, ExplanationNamesTheCompileOutcome) {
  // Causal ordering falls back (cross-process pattern) ...
  const LintResult causal = lint_predicate(causal_ordering());
  bool saw_fallback = false;
  for (const LintDiagnostic& d : causal.diagnostics) {
    for (const std::string& note : d.notes) {
      saw_fallback |=
          note.find("monitor automaton: fallback:") != std::string::npos;
    }
  }
  EXPECT_TRUE(saw_fallback);
  // ... while the marked-send pattern compiles to a DFA.
  const LintResult marked = lint_predicate(marked_send_order());
  bool saw_compiled = false;
  for (const LintDiagnostic& d : marked.diagnostics) {
    for (const std::string& note : d.notes) {
      saw_compiled |= note.find("monitor automaton: compiles to") !=
                      std::string::npos;
    }
  }
  EXPECT_TRUE(saw_compiled);
}

TEST(LintExplain, ExplanationNamesWitnessCycleAndBetaVertices) {
  const LintResult r = lint_predicate(causal_ordering());
  ASSERT_TRUE(r.has_rule("L012"));
  const LintDiagnostic* explanation = nullptr;
  for (const LintDiagnostic& d : r.diagnostics) {
    if (d.rule->id == "L012") explanation = &d;
  }
  ASSERT_NE(explanation, nullptr);
  bool saw_witness = false, saw_beta = false, saw_lemma4 = false;
  for (const std::string& note : explanation->notes) {
    saw_witness |= note.find("witness cycle:") != std::string::npos;
    saw_beta |= note.find("beta vertices: x") != std::string::npos;
    saw_lemma4 |= note.find("Lemma 4") != std::string::npos;
  }
  EXPECT_TRUE(saw_witness);
  EXPECT_TRUE(saw_beta);
  EXPECT_TRUE(saw_lemma4);
}

TEST(LintExplain, NoExplainSuppressesL012) {
  LintOptions options;
  options.explain = false;
  EXPECT_FALSE(lint_predicate(causal_ordering(), nullptr, options)
                   .has_rule("L012"));
}

TEST(LintExplain, OverStrengthHintNamesTheClassDrop) {
  CompositeSpec spec;
  spec.predicates = {causal_ordering(), sync_crown(2)};
  const LintResult r = lint_spec(spec);
  ASSERT_TRUE(r.has_rule("L013"));
  for (const LintDiagnostic& d : r.diagnostics) {
    if (d.rule->id != "L013") continue;
    EXPECT_EQ(d.predicate_index, std::optional<std::size_t>(1));
    EXPECT_NE(d.message.find("'general' to 'tagged'"), std::string::npos);
  }
}

TEST(LintIntent, MismatchedIntentIsAnErrorNotADemotion) {
  LintOptions options;
  options.expected = ProtocolClass::kTagged;
  const LintResult r =
      lint_text("(x.s |> y.s) & (y.s |> x.s)", options);  // really tagless
  EXPECT_TRUE(r.has_rule("L014"));
  // The L002 stays a warning: the intent did not match.
  EXPECT_GE(r.count(LintSeverity::kWarning), 1u);
}

TEST(LintIntent, MatchingIntentDemotesVerdictDiagnostics) {
  LintOptions options;
  options.expected = ProtocolClass::kTagless;
  const LintResult r = lint_text("(x.s |> y.s) & (y.s |> x.s)", options);
  EXPECT_TRUE(r.has_rule("L002"));
  EXPECT_TRUE(r.clean());  // demoted to a note
  EXPECT_FALSE(r.has_rule("L014"));
}

TEST(LintRender, CaretPointsAtTheOffendingSpan) {
  const std::string text = "(x.s |> y.s) & (y.s |> x.s)";
  const std::string rendered =
      render_lint_text(lint_text(text), text, "inline");
  EXPECT_NE(rendered.find("inline:1:1: warning [L002"), std::string::npos);
  EXPECT_NE(rendered.find("^~"), std::string::npos);
  EXPECT_NE(rendered.find("class: tagless"), std::string::npos);
}

TEST(LintRules, CatalogIsStableAndComplete) {
  ASSERT_EQ(lint_rules().size(), 17u);
  for (std::size_t i = 0; i < lint_rules().size(); ++i) {
    char id[32];
    std::snprintf(id, sizeof(id), "L%03zu", i + 1);
    EXPECT_EQ(lint_rules()[i].id, id);
    EXPECT_EQ(find_lint_rule(id), &lint_rules()[i]);
  }
  EXPECT_EQ(find_lint_rule("L999"), nullptr);
}

TEST(LintArtifact, ValidatesAndAggregates) {
  std::vector<LintInput> inputs;
  inputs.push_back({"bad", "", lint_text("(x.s |> x.r)")});
  inputs.push_back({"good", "", lint_text("(x.s |> y.s) & (y.r |> x.r)")});
  const std::string artifact = lint_artifact_json(inputs);
  std::string error;
  ASSERT_TRUE(json_validate(artifact, &error)) << error;
  const auto doc = json_parse(artifact, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->string_at("schema").value_or(""), "msgorder.lint/1");
  EXPECT_FALSE(doc->bool_at("clean").value_or(true));
  const JsonValue* totals = doc->find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(totals->number_at("inputs").value_or(0), 2.0);
  EXPECT_GE(totals->number_at("error").value_or(0), 1.0);
  const JsonValue* by_rule = totals->find("by_rule");
  ASSERT_NE(by_rule, nullptr);
  EXPECT_GE(by_rule->number_at("L003").value_or(0), 1.0);
  const JsonValue* lint_inputs = doc->find("inputs");
  ASSERT_NE(lint_inputs, nullptr);
  ASSERT_EQ(lint_inputs->as_array().size(), 2u);
  EXPECT_EQ(
      lint_inputs->as_array()[1].string_at("class").value_or(""),
      "tagged");
  EXPECT_TRUE(lint_inputs->as_array()[1].bool_at("clean").value_or(false));
}

TEST(LintSpans, DiagnosticsCarryFilePositions) {
  // The second line holds the bad constraint; the span must say so.
  const std::string text =
      "(x.s |> y.s) & (y.r |> x.r)\n  where color(y)=1, color(y)=2";
  const LintResult r = lint_text(text);
  ASSERT_TRUE(r.has_rule("L008"));
  for (const LintDiagnostic& d : r.diagnostics) {
    if (d.rule->id != "L008") continue;
    ASSERT_TRUE(d.span.has_value());
    EXPECT_EQ(d.span->line, 2u);
    EXPECT_EQ(text.substr(d.span->offset, d.span->length), "color(y)=2");
  }
}

}  // namespace
}  // namespace msgorder
