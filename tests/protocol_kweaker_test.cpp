#include <gtest/gtest.h>

#include "src/checker/limit_sets.hpp"
#include "src/checker/violation.hpp"
#include "src/protocols/causal_rst.hpp"
#include "src/protocols/kweaker.hpp"
#include "src/spec/library.hpp"
#include "tests/sim_harness.hpp"

namespace msgorder {
namespace {

TEST(KWeaker, SatisfiesItsSpecAcrossSeedsAndK) {
  for (std::size_t k = 0; k <= 3; ++k) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const auto result =
          run_protocol(KWeakerCausalProtocol::factory(k), 4, 120, seed);
      EXPECT_TRUE(satisfies(result.run, k_weaker_causal(k)))
          << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(KWeaker, KZeroIsCausalOrdering) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto result =
        run_protocol(KWeakerCausalProtocol::factory(0), 4, 120, seed);
    EXPECT_TRUE(in_causal(result.run)) << "seed " << seed;
  }
}

TEST(KWeaker, LargerKPermitsMoreReordering) {
  // With k >= 1 some seed must produce a non-causal (but k-weaker-valid)
  // run — that is the point of relaxing the ordering.
  bool non_causal_seen = false;
  for (std::uint64_t seed = 1; seed <= 25 && !non_causal_seen; ++seed) {
    const auto result =
        run_protocol(KWeakerCausalProtocol::factory(1), 4, 150, seed);
    non_causal_seen = !in_causal(result.run);
  }
  EXPECT_TRUE(non_causal_seen);
}

TEST(KWeaker, DeliveryDelayDecreasesWithK) {
  // Relaxation pays: buffering time decreases monotonically-ish in k.
  double previous = 1e18;
  for (std::size_t k : {0u, 2u, 6u}) {
    double total = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto result =
          run_protocol(KWeakerCausalProtocol::factory(k), 4, 200, seed);
      total += result.sim.trace.mean_delivery_delay();
    }
    EXPECT_LE(total, previous * 1.05) << "k=" << k;
    previous = total;
  }
}

TEST(KWeaker, NoControlMessages) {
  const auto result =
      run_protocol(KWeakerCausalProtocol::factory(2), 4, 100, 3);
  EXPECT_EQ(result.sim.trace.control_packets(), 0u);
  EXPECT_GT(result.sim.trace.mean_tag_bytes(), 0.0);
}

TEST(KWeaker, SingleChannelChainScenario) {
  // A burst on one channel: with slack k, a message may overtake at most
  // k causal-chain predecessors.
  std::vector<std::tuple<SimTime, ProcessId, ProcessId, int>> entries;
  for (int i = 0; i < 30; ++i) entries.push_back({0.01 * i, 0, 1, 0});
  const Workload w = scripted_workload(entries);
  SimOptions sopts;
  sopts.network.jitter_mean = 10.0;
  for (std::size_t k : {0u, 1u, 3u}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      sopts.seed = seed;
      const SimResult sim =
          simulate(w, KWeakerCausalProtocol::factory(k), 2, sopts);
      ASSERT_TRUE(sim.completed) << sim.error;
      const auto run = sim.trace.to_user_run();
      ASSERT_TRUE(run.has_value());
      EXPECT_TRUE(satisfies(*run, k_weaker_causal(k)))
          << "k=" << k << " seed=" << seed;
      // On a single channel, chain depth == send distance: message m may
      // not be delivered after m+k+1.
      for (MessageId m = 0; m + k + 1 < 30; ++m) {
        EXPECT_FALSE(run->before(m + k + 1, UserEventKind::kDeliver, m,
                                 UserEventKind::kDeliver));
      }
    }
  }
}

}  // namespace
}  // namespace msgorder
