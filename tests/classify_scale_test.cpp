// Scale tests for the classifier (ISSUE 5 satellite): randomized
// predicate graphs up to 64 variables, cross-checked against a naive
// min-plus (Floyd-Warshall) closed-walk order enumerator on the labelled
// state graph.  The production path (PredicateGraph::min_order_closed_walk,
// a 0-1 BFS per anchor) must agree with the naive dynamic program on
// acyclicity and on the minimum order, and its witness walk must have the
// order it claims.
#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <vector>

#include "src/spec/classify.hpp"
#include "src/spec/graph.hpp"
#include "src/spec/predicate.hpp"

namespace msgorder {
namespace {

constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

/// Naive reference: minimum beta count over all closed walks, by
/// Floyd-Warshall min-plus closure over states (vertex, incoming kind).
/// State s = 2*vertex + (incoming == kDeliver); traversing edge e from
/// vertex u costs 1 iff the junction (arrive at u via kind `in`, leave
/// via e) is a beta passage.  O(states^3), independent of the 0-1 BFS.
std::optional<std::size_t> naive_min_closed_walk_order(
    const ForbiddenPredicate& predicate) {
  const PredicateGraph graph(predicate);
  const std::size_t n_states = 2 * graph.vertex_count();
  if (n_states == 0) return std::nullopt;
  std::vector<std::vector<std::size_t>> dist(
      n_states, std::vector<std::size_t>(n_states, kInf));
  for (const PredicateEdge& edge : graph.edges()) {
    for (const UserEventKind in :
         {UserEventKind::kSend, UserEventKind::kDeliver}) {
      const std::size_t from =
          2 * edge.from + (in == UserEventKind::kDeliver ? 1 : 0);
      const std::size_t to =
          2 * edge.to + (edge.q == UserEventKind::kDeliver ? 1 : 0);
      const std::size_t cost = in == UserEventKind::kDeliver &&
                                       edge.p == UserEventKind::kSend
                                   ? 1
                                   : 0;
      dist[from][to] = std::min(dist[from][to], cost);
    }
  }
  for (std::size_t k = 0; k < n_states; ++k) {
    for (std::size_t i = 0; i < n_states; ++i) {
      if (dist[i][k] == kInf) continue;
      for (std::size_t j = 0; j < n_states; ++j) {
        if (dist[k][j] == kInf) continue;
        dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
      }
    }
  }
  std::size_t best = kInf;
  for (std::size_t s = 0; s < n_states; ++s) {
    best = std::min(best, dist[s][s]);
  }
  if (best == kInf) return std::nullopt;
  return best;
}

/// A random normalization-proof predicate: `arity` variables, `n_edges`
/// conjuncts with distinct endpoints (no self-conjuncts, so normalize
/// keeps the structure and the two analyses see the same graph).
ForbiddenPredicate random_predicate(std::mt19937_64& rng, std::size_t arity,
                                    std::size_t n_edges) {
  std::uniform_int_distribution<std::size_t> var(0, arity - 1);
  std::uniform_int_distribution<int> kind(0, 1);
  ForbiddenPredicate p;
  p.arity = arity;
  while (p.conjuncts.size() < n_edges) {
    Conjunct c;
    c.lhs = var(rng);
    c.rhs = var(rng);
    if (c.lhs == c.rhs) continue;
    c.p = kind(rng) ? UserEventKind::kSend : UserEventKind::kDeliver;
    c.q = kind(rng) ? UserEventKind::kSend : UserEventKind::kDeliver;
    p.conjuncts.push_back(c);
  }
  return p;
}

void check_against_naive(const ForbiddenPredicate& predicate) {
  const PredicateGraph graph(predicate);
  const auto naive = naive_min_closed_walk_order(predicate);
  const auto walk = graph.min_order_closed_walk();
  ASSERT_EQ(walk.has_value(), naive.has_value())
      << predicate.to_string();
  ASSERT_EQ(walk.has_value(), graph.has_cycle()) << predicate.to_string();
  if (!walk.has_value()) return;
  EXPECT_EQ(walk->order, *naive) << predicate.to_string();
  // The witness must really achieve the order it claims.
  EXPECT_EQ(graph.order_of(walk->edges), walk->order)
      << predicate.to_string();
}

TEST(ClassifyScale, RandomSparseGraphsUpTo64Variables) {
  std::mt19937_64 rng(20260806);
  for (const std::size_t arity : {4u, 8u, 16u, 32u, 48u, 64u}) {
    for (int trial = 0; trial < 8; ++trial) {
      // Sparse: |E| near |V| keeps simple-cycle counts sane while still
      // producing plenty of multi-cycle graphs.
      const std::size_t n_edges = arity + static_cast<std::size_t>(trial);
      check_against_naive(random_predicate(rng, arity, n_edges));
    }
  }
}

TEST(ClassifyScale, DenserGraphsStillAgree) {
  std::mt19937_64 rng(99991);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t arity = 24;
    check_against_naive(random_predicate(rng, arity, 3 * arity));
  }
}

TEST(ClassifyScale, LargeCrownHasOrderEqualToSize) {
  ForbiddenPredicate crown;
  crown.arity = 64;
  for (std::size_t i = 0; i < 64; ++i) {
    crown.conjuncts.push_back(
        {i, UserEventKind::kSend, (i + 1) % 64, UserEventKind::kDeliver});
  }
  const Classification c = classify(crown);
  EXPECT_EQ(c.protocol_class, ProtocolClass::kGeneral);
  ASSERT_TRUE(c.min_order.has_value());
  EXPECT_EQ(*c.min_order, 64u);
  EXPECT_EQ(naive_min_closed_walk_order(crown), c.min_order);
}

TEST(ClassifyScale, LongChainWithOneBackEdgeIsOrderOne) {
  // (x0.s |> x1.s) & ... & (x62.s |> x63.s) & (x63.r |> x0.r):
  // 64-variable k-weaker-causal shape; exactly one beta passage.
  ForbiddenPredicate chain;
  chain.arity = 64;
  for (std::size_t i = 0; i + 1 < 64; ++i) {
    chain.conjuncts.push_back(
        {i, UserEventKind::kSend, i + 1, UserEventKind::kSend});
  }
  chain.conjuncts.push_back(
      {63, UserEventKind::kDeliver, 0, UserEventKind::kDeliver});
  const Classification c = classify(chain);
  EXPECT_EQ(c.protocol_class, ProtocolClass::kTagged);
  EXPECT_EQ(c.min_order, std::optional<std::size_t>(1));
  EXPECT_EQ(naive_min_closed_walk_order(chain), c.min_order);
}

TEST(ClassifyScale, RandomGraphsClassifyWithoutWitnessDrift) {
  // classify() adds normalization on top of the raw graph machinery;
  // with self-conjunct-free inputs the reported class must follow the
  // naive order through the Section 4.3 table.
  std::mt19937_64 rng(42424242);
  for (int trial = 0; trial < 10; ++trial) {
    const ForbiddenPredicate p = random_predicate(rng, 40, 44);
    const Classification c = classify(p);
    const auto naive = naive_min_closed_walk_order(p);
    if (!naive.has_value()) {
      EXPECT_EQ(c.protocol_class, ProtocolClass::kNotImplementable);
      continue;
    }
    const ProtocolClass want = *naive == 0   ? ProtocolClass::kTagless
                               : *naive == 1 ? ProtocolClass::kTagged
                                             : ProtocolClass::kGeneral;
    EXPECT_EQ(c.protocol_class, want) << p.to_string();
  }
}

}  // namespace
}  // namespace msgorder
