// Engine profiler + inhibition heatmap (ISSUE 7 tentpole): the
// acceptance invariants as a test suite.
//   * A profiled sharded run emits a validating msgorder.profile/1
//     section whose per-shard event counts sum to the trace's event
//     total (at 1M messages under NDEBUG, a smaller workload in
//     sanitizer builds).
//   * Under a low-lookahead network the stall-cause counters attribute
//     zero-progress windows to lookahead exhaustion; with deliberately
//     tiny cross-shard rings they attribute ring backpressure.
//   * The per-channel heatmap's per-kind cell sums equal
//     DelayAttribution::totals_by_kind() exactly, and the run report
//     embeds both sections consistently.
#include <gtest/gtest.h>

#include <array>
#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>

#include "src/obs/heatmap.hpp"
#include "src/obs/json.hpp"
#include "src/obs/json_value.hpp"
#include "src/obs/observability.hpp"
#include "src/obs/report.hpp"
#include "src/protocols/fifo.hpp"
#include "src/protocols/registry.hpp"
#include "src/sim/simulator.hpp"

namespace msgorder {
namespace {

// The acceptance-scale workload.  Sanitizer builds (the Debug CI job)
// run the same assertions at a size that keeps the suite fast.
#ifdef NDEBUG
constexpr std::size_t kBigMessages = 1'000'000;
#else
constexpr std::size_t kBigMessages = 50'000;
#endif

Workload make_workload(std::size_t n_processes, std::size_t n_messages,
                       std::uint64_t seed, double mean_gap = 0.3) {
  Rng rng(seed);
  WorkloadOptions wopts;
  wopts.n_processes = n_processes;
  wopts.n_messages = n_messages;
  wopts.mean_gap = mean_gap;
  return random_workload(wopts, rng);
}

std::uint64_t trace_event_count(const Trace& trace) {
  std::uint64_t n = 0;
  for (const auto& log : trace.logs()) n += log.size();
  return n;
}

std::uint64_t per_shard_event_sum(const SimProfile& profile) {
  std::uint64_t n = 0;
  for (std::size_t s = 0; s < profile.shard_count(); ++s) {
    n += profile.shard(s).events;
  }
  return n;
}

TEST(SimProfileTest, ShardedRunEventSumsMatchTraceAndJsonValidates) {
  const Workload workload = make_workload(8, kBigMessages, 21);
  Observability obs({.tracing = true, .attribution = false,
                     .profiling = true});
  SimOptions sopts;
  sopts.seed = 33;
  sopts.shards = 4;
  sopts.shard_workers = 4;  // threaded: barrier rows get exercised too
  sopts.max_events = 20'000'000;  // headroom at acceptance scale
  sopts.observability = &obs;
  const SimResult result =
      simulate(workload, FifoProtocol::factory(), 8, sopts);
  ASSERT_TRUE(result.completed) << result.error;
  ASSERT_EQ(result.shards_used, 4u);

  const SimProfile* profile = obs.profile();
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->engine(), "sharded");
  EXPECT_EQ(profile->shard_count(), 4u);
  EXPECT_GT(profile->windows(), 0u);

  // The acceptance invariant: per-shard event counts sum to the trace's
  // event total (and the aggregate accessor agrees).
  const std::uint64_t trace_events = trace_event_count(result.trace);
  EXPECT_EQ(per_shard_event_sum(*profile), trace_events);
  EXPECT_EQ(profile->total_events(), trace_events);

  // Every shard actually ran windows and work was spread around.
  std::uint64_t entries = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    const ShardProfileRow& row = profile->shard(s);
    EXPECT_GT(row.windows, 0u) << "shard " << s;
    EXPECT_GT(row.events, 0u) << "shard " << s;
    EXPECT_GT(row.heap_depth_hwm, 0u) << "shard " << s;
    entries += row.entries;
  }
  EXPECT_EQ(entries, profile->total_entries());

  // Threaded mode: the workers went through the window barriers.
  ASSERT_EQ(profile->worker_count(), 4u);
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_GT(profile->worker(w).barrier_waits, 0u) << "worker " << w;
  }

  // The standalone JSON document validates and round-trips with the
  // expected schema tag and totals.
  const std::string json = profile->to_json();
  std::string error;
  ASSERT_TRUE(json_validate(json, &error)) << error;
  const auto doc = json_parse(json, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->string_at("schema").value_or(""), "msgorder.profile/1");
  EXPECT_EQ(doc->string_at("engine").value_or(""), "sharded");
  EXPECT_EQ(doc->number_at("events_total").value_or(-1),
            static_cast<double>(trace_events));
  const JsonValue* per_shard = doc->find("per_shard");
  ASSERT_NE(per_shard, nullptr);
  ASSERT_TRUE(per_shard->is_array());
  ASSERT_EQ(per_shard->as_array().size(), 4u);
  double json_event_sum = 0;
  for (const JsonValue& row : per_shard->as_array()) {
    json_event_sum += row.number_at("events").value_or(0);
  }
  EXPECT_EQ(json_event_sum, static_cast<double>(trace_events));
  const JsonValue* per_worker = doc->find("per_worker");
  ASSERT_NE(per_worker, nullptr);
  ASSERT_EQ(per_worker->as_array().size(), 4u);

  // Sampling was on (tracer attached), so the counter tracks land in
  // the Chrome trace as "C" phase events.
  ASSERT_NE(obs.tracer(), nullptr);
  const std::string trace_json = obs.tracer()->chrome_trace_json();
  EXPECT_NE(trace_json.find("entries_per_window"), std::string::npos);
  EXPECT_NE(trace_json.find("heap_depth"), std::string::npos);
}

TEST(SimProfileTest, LowLookaheadAttributesStallsToLookahead) {
  // Lookahead = base_delay.  Make it tiny relative to the workload's
  // inter-invoke gaps: windows then advance in slivers and shards keep
  // holding pending entries past the window end.
  const Workload workload = make_workload(8, 2000, 7, /*mean_gap=*/1.0);
  Observability obs({.attribution = false, .profiling = true});
  SimOptions sopts;
  sopts.seed = 11;
  sopts.shards = 4;
  sopts.network.base_delay = 0.01;
  sopts.network.jitter_mean = 0.5;
  sopts.observability = &obs;
  const SimResult result =
      simulate(workload, FifoProtocol::factory(), 8, sopts);
  ASSERT_TRUE(result.completed) << result.error;
  ASSERT_EQ(result.shards_used, 4u);

  const SimProfile* profile = obs.profile();
  ASSERT_NE(profile, nullptr);
  EXPECT_GT(profile->total_stall_lookahead(), 0u);
  // Stalled windows are still windows: the busy + stall split never
  // exceeds the polled-window count.
  for (std::size_t s = 0; s < profile->shard_count(); ++s) {
    const ShardProfileRow& row = profile->shard(s);
    EXPECT_LE(row.busy_windows + row.stall_lookahead + row.stall_empty +
                  row.stall_backpressure,
              row.windows);
  }
}

TEST(SimProfileTest, TinyRingsAttributeBackpressure) {
  // Capacity-2 rings force cross-shard packets into the producer spill
  // vectors; the profiler must see the failed pushes and the spilled
  // packets being drained back in.
  const Workload workload = make_workload(8, 4000, 13);
  Observability obs({.attribution = false, .profiling = true});
  SimOptions sopts;
  sopts.seed = 17;
  sopts.shards = 4;
  sopts.shard_workers = 4;
  sopts.cross_shard_ring_capacity = 2;
  sopts.network.jitter_mean = 3.0;
  sopts.observability = &obs;
  const SimResult result =
      simulate(workload, FifoProtocol::factory(), 8, sopts);
  ASSERT_TRUE(result.completed) << result.error;

  const SimProfile* profile = obs.profile();
  ASSERT_NE(profile, nullptr);
  std::uint64_t full_spins = 0;
  std::uint64_t spill_drained = 0;
  for (std::size_t s = 0; s < profile->shard_count(); ++s) {
    full_spins += profile->shard(s).ring_full_spins;
    spill_drained += profile->shard(s).spill_drained;
  }
  EXPECT_GT(full_spins, 0u);
  EXPECT_GT(spill_drained, 0u);

  // Same workload, same seed, roomy rings: identical trace (the spill
  // path is a capacity detail, not a semantic one), no backpressure.
  Observability obs2({.attribution = false, .profiling = true});
  SimOptions roomy = sopts;
  roomy.cross_shard_ring_capacity = 1 << 16;
  roomy.observability = &obs2;
  const SimResult result2 =
      simulate(workload, FifoProtocol::factory(), 8, roomy);
  ASSERT_TRUE(result2.completed) << result2.error;
  EXPECT_EQ(trace_event_count(result.trace),
            trace_event_count(result2.trace));
  std::uint64_t roomy_spins = 0;
  for (std::size_t s = 0; s < obs2.profile()->shard_count(); ++s) {
    roomy_spins += obs2.profile()->shard(s).ring_full_spins;
  }
  EXPECT_EQ(roomy_spins, 0u);
}

TEST(SimProfileTest, SequentialEngineProfilesWithoutStalls) {
  const Workload workload = make_workload(4, 800, 3);
  Observability obs({.attribution = false, .profiling = true});
  SimOptions sopts;
  sopts.seed = 5;
  sopts.observability = &obs;
  const SimResult result =
      simulate(workload, FifoProtocol::factory(), 4, sopts);
  ASSERT_TRUE(result.completed) << result.error;
  ASSERT_EQ(result.shards_used, 1u);

  const SimProfile* profile = obs.profile();
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->engine(), "sequential");
  ASSERT_EQ(profile->shard_count(), 1u);
  EXPECT_GT(profile->windows(), 0u);
  EXPECT_EQ(profile->total_events(), trace_event_count(result.trace));
  // The sequential window loop only opens a window at a pending entry,
  // so every window processes at least one: stalls are structural zero.
  EXPECT_EQ(profile->total_stall_lookahead(), 0u);
  EXPECT_EQ(profile->total_stall_empty(), 0u);
  EXPECT_EQ(profile->total_stall_backpressure(), 0u);
  const ShardProfileRow& row = profile->shard(0);
  EXPECT_EQ(row.busy_windows, row.windows);
  EXPECT_GT(row.heap_depth_hwm, 0u);
}

TEST(SimProfileTest, ProfileOffLeavesAccessorNull) {
  const Workload workload = make_workload(4, 200, 9);
  Observability obs;  // defaults: no profiling
  SimOptions sopts;
  sopts.observability = &obs;
  const SimResult result =
      simulate(workload, FifoProtocol::factory(), 4, sopts);
  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_EQ(obs.profile(), nullptr);
}

// ---------------------------------------------------------------------
// Inhibition heatmap

TEST(InhibitionHeatmapTest, CellSumsEqualAttributionTotalsByKind) {
  // Exercise several hold kinds: every registered protocol on the same
  // jittery workload, each heatmap checked against its own attribution.
  for (const RegisteredProtocol& rp : standard_protocols()) {
    const Workload workload = make_workload(6, 600, 29);
    Observability obs({.label = rp.name});
    SimOptions sopts;
    sopts.seed = 31;
    sopts.network.jitter_mean = 3.0;
    sopts.observability = &obs;
    const SimResult result = simulate(workload, rp.factory, 6, sopts);
    ASSERT_TRUE(result.completed) << rp.name << ": " << result.error;
    const DelayAttribution* attribution = obs.attribution();
    ASSERT_NE(attribution, nullptr) << rp.name;

    const InhibitionHeatmap heatmap = InhibitionHeatmap::build(*attribution);
    // Builder-side totals and a from-scratch cell sum must both equal
    // the attribution table's per-kind totals, kind by kind.
    std::array<SimTime, kHoldKindCount> cell_sums{};
    std::array<std::uint64_t, kHoldKindCount> cell_segments{};
    for (const HeatmapCell& cell : heatmap.cells()) {
      const auto k = static_cast<std::size_t>(cell.kind);
      cell_sums[k] += cell.total;
      cell_segments[k] += cell.segments;
      EXPECT_GT(cell.segments, 0u) << rp.name;
      EXPECT_NE(cell.kind, HoldKind::kNone) << rp.name;
    }
    for (std::size_t k = 0; k < kHoldKindCount; ++k) {
      // Same segments, different summation order: equal up to FP
      // re-association (relative 1e-9), not bit-equal.
      const SimTime expected = attribution->totals_by_kind()[k];
      const SimTime tol = std::max<SimTime>(1.0, expected) * 1e-9;
      EXPECT_NEAR(cell_sums[k], expected, tol) << rp.name << " kind " << k;
      EXPECT_NEAR(heatmap.totals_by_kind()[k], expected, tol)
          << rp.name << " kind " << k;
    }
  }
}

TEST(InhibitionHeatmapTest, CellsAreDeterministicallySorted) {
  const Workload workload = make_workload(6, 600, 29);
  Observability obs;
  SimOptions sopts;
  sopts.seed = 31;
  sopts.network.jitter_mean = 3.0;
  sopts.observability = &obs;
  const SimResult result =
      simulate(workload, FifoProtocol::factory(), 6, sopts);
  ASSERT_TRUE(result.completed) << result.error;
  const InhibitionHeatmap heatmap =
      InhibitionHeatmap::build(*obs.attribution());
  ASSERT_FALSE(heatmap.cells().empty());
  for (std::size_t i = 1; i < heatmap.cells().size(); ++i) {
    const HeatmapCell& a = heatmap.cells()[i - 1];
    const HeatmapCell& b = heatmap.cells()[i];
    // (kind, blocker with unknown last, blocked) strictly increasing.
    const auto key = [](const HeatmapCell& c) {
      return std::make_tuple(
          static_cast<int>(c.kind), !c.blocker.has_value(),
          c.blocker.value_or(0), c.blocked);
    };
    EXPECT_LT(key(a), key(b)) << "cells " << i - 1 << ", " << i;
  }
}

TEST(InhibitionHeatmapTest, RunReportEmbedsConsistentSections) {
  const Workload workload = make_workload(6, 600, 41);
  Observability obs({.tracing = true, .profiling = true});
  SimOptions sopts;
  sopts.seed = 43;
  sopts.shards = 2;
  sopts.network.jitter_mean = 3.0;
  sopts.observability = &obs;
  const SimResult result =
      simulate(workload, FifoProtocol::factory(), 6, sopts);
  ASSERT_TRUE(result.completed) << result.error;

  const std::string report = run_report_json(result, {.protocol = "fifo"}, &obs);
  std::string error;
  ASSERT_TRUE(json_validate(report, &error)) << error;
  const auto doc = json_parse(report, &error);
  ASSERT_TRUE(doc.has_value()) << error;

  // Profile section: present, tagged, and consistent with the run.
  const JsonValue* profile = doc->find("profile");
  ASSERT_NE(profile, nullptr);
  ASSERT_TRUE(profile->is_object());
  EXPECT_EQ(profile->string_at("schema").value_or(""),
            "msgorder.profile/1");
  EXPECT_EQ(profile->number_at("events_total").value_or(-1),
            static_cast<double>(trace_event_count(result.trace)));

  // Heatmap section: per-kind cell sums equal both its own
  // held_by_kind rollup and the attribution section's held_by_reason.
  const JsonValue* heatmap = doc->find("inhibition_heatmap");
  ASSERT_NE(heatmap, nullptr);
  ASSERT_TRUE(heatmap->is_object());
  const JsonValue* cells = heatmap->find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_FALSE(cells->as_array().empty());
  std::map<std::string, double> sums;
  for (const JsonValue& cell : cells->as_array()) {
    sums[cell.string_at("kind").value_or("?")] +=
        cell.number_at("total").value_or(0);
  }
  const JsonValue* held_by_kind = heatmap->find("held_by_kind");
  ASSERT_NE(held_by_kind, nullptr);
  for (const auto& [kind, total] : held_by_kind->as_object()) {
    EXPECT_NEAR(sums[kind], total.as_number(), 1e-9) << kind;
  }
  const JsonValue* attribution = doc->find("attribution");
  ASSERT_NE(attribution, nullptr);
  const JsonValue* held_by_reason = attribution->find("held_by_reason");
  ASSERT_NE(held_by_reason, nullptr);
  for (const auto& [kind, total] : held_by_reason->as_object()) {
    EXPECT_NEAR(sums.count(kind) != 0 ? sums[kind] : 0.0,
                total.as_number(), 1e-9)
        << kind;
  }
}

// A run without attribution still reports: the heatmap slot goes null
// instead of lying with an empty matrix.
TEST(InhibitionHeatmapTest, ReportWithoutAttributionHasNullHeatmap) {
  const Workload workload = make_workload(4, 200, 3);
  Observability obs({.attribution = false});
  SimOptions sopts;
  sopts.observability = &obs;
  const SimResult result =
      simulate(workload, FifoProtocol::factory(), 4, sopts);
  ASSERT_TRUE(result.completed) << result.error;
  const std::string report = run_report_json(result, {.protocol = "fifo"}, &obs);
  std::string error;
  const auto doc = json_parse(report, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* heatmap = doc->find("inhibition_heatmap");
  ASSERT_NE(heatmap, nullptr);
  EXPECT_TRUE(heatmap->is_null());
  const JsonValue* profile = doc->find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_TRUE(profile->is_null());
}

}  // namespace
}  // namespace msgorder
