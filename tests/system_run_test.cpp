#include <gtest/gtest.h>

#include "src/poset/system_run.hpp"

namespace msgorder {
namespace {

std::vector<Message> two_messages() {
  return {{0, 0, 1, 0}, {1, 1, 0, 0}};
}

SystemEvent ev(MessageId m, EventKind k) { return {m, k}; }

TEST(SystemRun, EmptyRunProperties) {
  SystemRun run(two_messages(), 2);
  EXPECT_EQ(run.event_count(), 0u);
  EXPECT_TRUE(run.quiescent());
  EXPECT_TRUE(run.user_complete());
  EXPECT_EQ(run.pending_invokes(0).size(), 1u);  // message 0 from P0
  EXPECT_EQ(run.pending_invokes(1).size(), 1u);
  EXPECT_TRUE(run.pending_sends(0).empty());
}

TEST(SystemRun, ExecuteFullMessageLifecycle) {
  SystemRun run(two_messages(), 2);
  EXPECT_TRUE(run.can_execute(ev(0, EventKind::kInvoke)));
  EXPECT_FALSE(run.can_execute(ev(0, EventKind::kSend)));
  run = run.executed(ev(0, EventKind::kInvoke));
  EXPECT_EQ(run.pending_sends(0).size(), 1u);
  EXPECT_FALSE(run.quiescent());
  run = run.executed(ev(0, EventKind::kSend));
  EXPECT_EQ(run.pending_receives(1).size(), 1u);
  run = run.executed(ev(0, EventKind::kReceive));
  EXPECT_EQ(run.pending_deliveries(1).size(), 1u);
  EXPECT_FALSE(run.user_complete());
  run = run.executed(ev(0, EventKind::kDeliver));
  EXPECT_TRUE(run.quiescent());
  EXPECT_TRUE(run.user_complete());
  EXPECT_TRUE(run.before(ev(0, EventKind::kInvoke),
                         ev(0, EventKind::kDeliver)));
}

TEST(SystemRun, FromSequencesValid) {
  const auto run = SystemRun::from_sequences(
      two_messages(),
      {
          {ev(0, EventKind::kInvoke), ev(0, EventKind::kSend),
           ev(1, EventKind::kReceive), ev(1, EventKind::kDeliver)},
          {ev(1, EventKind::kInvoke), ev(1, EventKind::kSend),
           ev(0, EventKind::kReceive), ev(0, EventKind::kDeliver)},
      });
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->event_count(), 8u);
  EXPECT_TRUE(run->quiescent());
}

TEST(SystemRun, RejectsReceiveWithoutSend) {
  std::string error;
  const auto run = SystemRun::from_sequences(
      two_messages(),
      {{}, {ev(0, EventKind::kReceive)}}, &error);
  EXPECT_FALSE(run.has_value());
  EXPECT_NE(error.find("receive without send"), std::string::npos);
}

TEST(SystemRun, RejectsSendWithoutInvoke) {
  std::string error;
  const auto run = SystemRun::from_sequences(
      two_messages(), {{ev(0, EventKind::kSend)}, {}}, &error);
  EXPECT_FALSE(run.has_value());
  EXPECT_NE(error.find("send without invoke"), std::string::npos);
}

TEST(SystemRun, RejectsWrongHome) {
  std::string error;
  const auto run = SystemRun::from_sequences(
      two_messages(), {{}, {ev(0, EventKind::kInvoke)}}, &error);
  EXPECT_FALSE(run.has_value());
  EXPECT_NE(error.find("wrong process"), std::string::npos);
}

TEST(SystemRun, RejectsInvokeAfterSendOrder) {
  std::string error;
  const auto run = SystemRun::from_sequences(
      two_messages(),
      {{ev(0, EventKind::kSend), ev(0, EventKind::kInvoke)}, {}}, &error);
  EXPECT_FALSE(run.has_value());
}

TEST(SystemRun, RejectsCrossingTimeCycle) {
  // P0 receives message 1 before sending 0; P1 receives 0 before
  // sending 1 — physically impossible, the relation is cyclic.
  std::string error;
  const auto run = SystemRun::from_sequences(
      two_messages(),
      {
          {ev(1, EventKind::kReceive), ev(0, EventKind::kInvoke),
           ev(0, EventKind::kSend)},
          {ev(0, EventKind::kReceive), ev(1, EventKind::kInvoke),
           ev(1, EventKind::kSend)},
      },
      &error);
  EXPECT_FALSE(run.has_value());
  EXPECT_NE(error.find("partial order"), std::string::npos);
}

TEST(SystemRun, CrossProcessCausalityViaMessage) {
  const auto run = SystemRun::from_sequences(
      two_messages(),
      {
          {ev(0, EventKind::kInvoke), ev(0, EventKind::kSend)},
          {ev(0, EventKind::kReceive), ev(0, EventKind::kDeliver),
           ev(1, EventKind::kInvoke), ev(1, EventKind::kSend)},
      });
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(run->before(ev(0, EventKind::kSend),
                          ev(1, EventKind::kSend)));
  EXPECT_FALSE(run->before(ev(1, EventKind::kSend),
                           ev(0, EventKind::kSend)));
}

TEST(SystemRun, PrefixIsARun) {
  const auto run = SystemRun::from_sequences(
      two_messages(),
      {
          {ev(0, EventKind::kInvoke), ev(0, EventKind::kSend)},
          {ev(0, EventKind::kReceive), ev(0, EventKind::kDeliver)},
      });
  ASSERT_TRUE(run.has_value());
  const auto cut = run->prefix({2, 1});
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(cut->event_count(), 3u);
  EXPECT_TRUE(cut->present(0, EventKind::kReceive));
  EXPECT_FALSE(cut->present(0, EventKind::kDeliver));
}

TEST(SystemRun, PrefixRejectsBadLengths) {
  SystemRun run(two_messages(), 2);
  EXPECT_FALSE(run.prefix({1, 0}).has_value());   // longer than run
  EXPECT_FALSE(run.prefix({0}).has_value());      // wrong arity
}

TEST(SystemRun, UsersViewProjectsAndRenumbers) {
  // Only message 1 completes; message 0 is never sent.
  std::vector<Message> universe = two_messages();
  const auto run = SystemRun::from_sequences(
      universe,
      {
          {ev(1, EventKind::kReceive), ev(1, EventKind::kDeliver)},
          {ev(1, EventKind::kInvoke), ev(1, EventKind::kSend)},
      });
  ASSERT_TRUE(run.has_value());
  const auto view = run->users_view();
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->message_count(), 1u);
  EXPECT_EQ(view->message(0).src, 1u);  // renumbered copy of message 1
  EXPECT_EQ(view->message(0).dst, 0u);
}

TEST(SystemRun, UsersViewFailsWhenIncomplete) {
  const auto run = SystemRun::from_sequences(
      two_messages(),
      {{ev(0, EventKind::kInvoke), ev(0, EventKind::kSend)}, {}});
  ASSERT_TRUE(run.has_value());
  EXPECT_FALSE(run->user_complete());
  EXPECT_FALSE(run->users_view().has_value());
}

TEST(SystemRun, UsersViewHidesProtocolDelays) {
  // Figure 4: with FIFO delaying delivery, s2 -> r1 holds in the system
  // view but not in the user view.
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 0, 1, 0}};
  const auto run = SystemRun::from_sequences(
      ms,
      {
          {ev(0, EventKind::kInvoke), ev(0, EventKind::kSend),
           ev(1, EventKind::kInvoke), ev(1, EventKind::kSend)},
          // Message 1 arrives first, is buffered; 0 arrives, both deliver
          // in FIFO order.
          {ev(1, EventKind::kReceive), ev(0, EventKind::kReceive),
           ev(0, EventKind::kDeliver), ev(1, EventKind::kDeliver)},
      });
  ASSERT_TRUE(run.has_value());
  // System view: x1.s -> x0.r* chain exists via receive ordering.
  EXPECT_TRUE(run->before(ev(1, EventKind::kSend),
                          ev(0, EventKind::kDeliver)));
  const auto view = run->users_view();
  ASSERT_TRUE(view.has_value());
  // User view: message 1's send does NOT precede message 0's delivery.
  EXPECT_FALSE(view->before(1, UserEventKind::kSend, 0,
                            UserEventKind::kDeliver));
  EXPECT_TRUE(view->before(0, UserEventKind::kSend, 1,
                           UserEventKind::kDeliver));
}

TEST(SystemRun, KeyDistinguishesRuns) {
  SystemRun a(two_messages(), 2);
  const SystemRun b = a.executed(ev(0, EventKind::kInvoke));
  EXPECT_NE(a.key(), b.key());
  EXPECT_EQ(a.key(), SystemRun(two_messages(), 2).key());
}

TEST(SystemRun, ControllableIsSendsPlusDeliveries) {
  SystemRun run(two_messages(), 2);
  run = run.executed(ev(0, EventKind::kInvoke));
  run = run.executed(ev(1, EventKind::kInvoke));
  run = run.executed(ev(1, EventKind::kSend));
  run = run.executed(ev(1, EventKind::kReceive));
  const auto c0 = run.controllable(0);
  ASSERT_EQ(c0.size(), 2u);  // send of 0, delivery of 1
  EXPECT_EQ(c0[0].kind, EventKind::kSend);
  EXPECT_EQ(c0[1].kind, EventKind::kDeliver);
}

}  // namespace
}  // namespace msgorder
