// Tests for the observability metrics layer (ISSUE 2): counters,
// gauges, fixed-bucket histograms with percentile queries, the registry,
// and the JSON writer/validator the reports are built on.
#include <gtest/gtest.h>

#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"

namespace msgorder {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, TracksValueAndHighWatermark) {
  Gauge g;
  g.add(3);
  g.add(4);
  g.add(-5);
  EXPECT_DOUBLE_EQ(g.value(), 2);
  EXPECT_DOUBLE_EQ(g.max(), 7);
  g.set(100);
  EXPECT_DOUBLE_EQ(g.max(), 100);
}

TEST(Histogram, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0);
  EXPECT_DOUBLE_EQ(h.max(), 0);
}

// ISSUE 4 regression: an empty histogram has no percentiles — the old
// interface reported 0, indistinguishable from a real 0-valued
// distribution, which poisoned report percentile columns.
TEST(Histogram, EmptyHistogramHasNoPercentiles) {
  Histogram h;
  EXPECT_FALSE(h.percentile(50).has_value());
  EXPECT_FALSE(h.percentile(100).has_value());
  h.record(3.0);
  ASSERT_TRUE(h.percentile(50).has_value());
  EXPECT_DOUBLE_EQ(h.percentile(100).value(), 3.0);
}

// Empty histograms serialize with null percentiles, and the output is
// still valid JSON.
TEST(Histogram, EmptyHistogramSerializesNullPercentiles) {
  JsonWriter w;
  Histogram h;
  write_histogram_json(w, h);
  EXPECT_NE(w.str().find("\"p50\":null"), std::string::npos) << w.str();
  std::string error;
  EXPECT_TRUE(json_validate(w.str(), &error)) << error;
}

TEST(Histogram, ExactStatsAreExact) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 10.0}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 16);
  EXPECT_DOUBLE_EQ(h.mean(), 4);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 10);
}

TEST(Histogram, LinearPercentilesAreMonotoneAndBounded) {
  HistogramOptions opts;
  opts.scale = HistogramOptions::Scale::kLinear;
  opts.width = 1.0;
  opts.buckets = 128;
  Histogram h(opts);
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  double prev = 0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double v = h.percentile(p).value();
    EXPECT_GE(v, prev) << "p" << p;
    // A unit-wide bucket pins each percentile to within one bucket.
    EXPECT_NEAR(v, p, 1.5) << "p" << p;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.percentile(100).value(), 100);
}

TEST(Histogram, Exp2PercentilesCoverWideRanges) {
  Histogram h;  // default exp2 x 64 buckets
  for (int i = 0; i < 1000; ++i) h.record(0.5);
  h.record(10000.0);
  EXPECT_LE(h.percentile(50).value(), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100).value(), 10000.0);
  // The single large value sits in the tail, not in the median.
  EXPECT_LT(h.percentile(90).value(), 2.0);
}

TEST(Histogram, OverflowBucketReportsObservedMax) {
  HistogramOptions opts;
  opts.scale = HistogramOptions::Scale::kLinear;
  opts.width = 1.0;
  opts.buckets = 4;
  Histogram h(opts);
  for (int i = 0; i < 10; ++i) h.record(1e6);
  EXPECT_DOUBLE_EQ(h.percentile(50).value(), 1e6);
}

TEST(MetricsRegistry, SameNameSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("net.drops");
  Counter& b = reg.counter("net.drops");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(reg.find_counter("net.drops"), &a);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
}

TEST(MetricsRegistry, ReferencesSurviveLaterRegistrations) {
  MetricsRegistry reg;
  Counter& first = reg.counter("a");
  for (int i = 0; i < 100; ++i) {
    reg.counter("c" + std::to_string(i));
  }
  first.inc(7);
  EXPECT_EQ(reg.find_counter("a")->value(), 7u);
}

TEST(MetricsRegistry, ToJsonIsValidAndCarriesInstruments) {
  MetricsRegistry reg;
  reg.counter("sim.events").inc(5);
  reg.gauge("depth").set(3);
  reg.histogram("lat").record(2.0);
  const std::string json = reg.to_json();
  std::string error;
  EXPECT_TRUE(json_validate(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"sim.events\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("msgorder.metrics/1"), std::string::npos);
  EXPECT_NE(json.find("\"depth\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_object();
  w.kv("k", "a\"b\\c\nd");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\nd\"}");
  std::string error;
  EXPECT_TRUE(json_validate(w.str(), &error)) << error;
}

TEST(JsonWriter, NestedContainersGetCommasRight) {
  JsonWriter w;
  w.begin_object();
  w.key("a").begin_array().value(1).value(2).end_array();
  w.kv("b", true);
  w.key("c").begin_object().kv("x", 1.5).end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\":[1,2],\"b\":true,\"c\":{\"x\":1.5}}");
}

TEST(JsonValidate, AcceptsAndRejects) {
  EXPECT_TRUE(json_validate("{\"a\": [1, 2.5, -3e2, null, true, \"x\"]}"));
  EXPECT_TRUE(json_validate("  42  "));
  std::string error;
  EXPECT_FALSE(json_validate("{\"a\":}", &error));
  EXPECT_FALSE(json_validate("[1, 2", &error));
  EXPECT_FALSE(json_validate("{\"a\":1} trailing", &error));
  EXPECT_FALSE(json_validate("{'a':1}", &error));
  EXPECT_FALSE(json_validate("", &error));
}

}  // namespace
}  // namespace msgorder
