// Unit tests for the fork-join sweep runner (src/util/parallel).  These
// are the tests the CI TSan job runs: every access pattern the bench
// harnesses rely on (distinct result slots, atomic aggregation) is
// exercised under -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/util/parallel.hpp"

namespace msgorder {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCells = 997;
  std::vector<std::atomic<int>> hits(kCells);
  parallel_for(kCells, 4, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "cell " << i;
  }
}

TEST(ParallelFor, DistinctResultSlotsNeedNoSynchronization) {
  // The bench-harness contract: each cell writes only its own slot.
  constexpr std::size_t kCells = 512;
  std::vector<std::size_t> slot(kCells, 0);
  parallel_for(kCells, 8, [&](std::size_t i) { slot[i] = i * i; });
  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(slot[i], i * i);
  }
}

TEST(ParallelFor, SharedAtomicAggregation) {
  constexpr std::size_t kCells = 10000;
  std::atomic<std::uint64_t> sum{0};
  parallel_for(kCells, 4, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kCells * (kCells - 1) / 2);
}

TEST(ParallelFor, MoreThreadsThanCells) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(3, 16, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SingleThreadRunsInlineOnTheCaller) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(5);
  parallel_for(seen.size(), 1,
               [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const std::thread::id id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, ZeroCellsIsANoop) {
  bool called = false;
  parallel_for(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(DefaultSweepThreads, BoundedByCellsAndAtLeastOne) {
  EXPECT_EQ(default_sweep_threads(0), 1u);
  EXPECT_EQ(default_sweep_threads(1), 1u);
  EXPECT_LE(default_sweep_threads(2), 2u);
  EXPECT_GE(default_sweep_threads(1024), 1u);
}

}  // namespace
}  // namespace msgorder
