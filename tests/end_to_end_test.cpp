// Full-pipeline integration: DSL text -> classify -> synthesize ->
// simulate on a hostile (lossy, jittered) network with the online
// monitor attached -> offline oracle on the extracted run.  One test per
// specification style.
#include <gtest/gtest.h>

#include <memory>

#include "src/checker/monitor.hpp"
#include "src/checker/violation.hpp"
#include "src/poset/diagram.hpp"
#include "src/protocols/reliable.hpp"
#include "src/protocols/synthesized.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/parser.hpp"

namespace msgorder {
namespace {

struct PipelineResult {
  Classification classification;
  bool monitor_fired = false;
  bool oracle_ok = false;
  bool completed = false;
};

PipelineResult pipeline(const std::string& spec_text, double loss,
                        double red_fraction, int red_color,
                        std::uint64_t seed) {
  PipelineResult out;
  const ParseResult parsed = parse_predicate(spec_text);
  EXPECT_TRUE(parsed.ok()) << parsed.error;
  if (!parsed.ok()) return out;
  const ForbiddenPredicate spec = *parsed.predicate;

  const SynthesisResult synthesis = synthesize(spec);
  out.classification = synthesis.classification;
  EXPECT_TRUE(synthesis.factory.has_value()) << spec_text;
  if (!synthesis.factory.has_value()) return out;

  Rng rng(seed);
  WorkloadOptions wopts;
  wopts.n_processes = 4;
  wopts.n_messages = 100;
  wopts.mean_gap = 0.3;
  wopts.red_fraction = red_fraction;
  wopts.red_color = red_color;
  const Workload workload = random_workload(wopts, rng);

  auto monitor = std::make_shared<OnlineMonitor>(
      workload_universe(workload), spec);
  SimOptions sopts;
  sopts.seed = seed * 3 + 1;
  sopts.network.jitter_mean = 3.0;
  sopts.network.loss_probability = loss;
  sopts.observers.add(monitor_observer(monitor));
  ReliableOptions ropts;
  ropts.retransmit_timeout = 15.0;
  const ProtocolFactory stack =
      loss > 0 ? ReliableProtocol::wrap(*synthesis.factory, ropts)
               : *synthesis.factory;
  const SimResult result =
      simulate(workload, stack, wopts.n_processes, sopts);
  out.completed = result.completed;
  EXPECT_TRUE(result.completed) << result.error;
  if (!result.completed) return out;

  out.monitor_fired = monitor->violated();
  const auto run = result.trace.to_user_run();
  EXPECT_TRUE(run.has_value());
  if (run.has_value()) out.oracle_ok = satisfies(*run, spec);
  return out;
}

TEST(EndToEnd, CausalSpecOverLossyNetwork) {
  const auto r = pipeline("(x.s |> y.s) & (y.r |> x.r)", 0.2, 0, 1, 7);
  EXPECT_EQ(r.classification.protocol_class, ProtocolClass::kTagged);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.oracle_ok);
  EXPECT_FALSE(r.monitor_fired);
}

TEST(EndToEnd, FifoSpec) {
  const auto r = pipeline(
      "(x.s |> y.s) & (y.r |> x.r) "
      "where process(x.s)=process(y.s), process(x.r)=process(y.r)",
      0.0, 0, 1, 9);
  EXPECT_EQ(r.classification.protocol_class, ProtocolClass::kTagged);
  EXPECT_TRUE(r.oracle_ok);
  EXPECT_FALSE(r.monitor_fired);
}

TEST(EndToEnd, GlobalFlushSpecWithRedTraffic) {
  const auto r = pipeline(
      "(x.s |> y.s) & (y.r |> x.r) where color(y)=1", 0.0, 0.3, 1, 11);
  EXPECT_EQ(r.classification.protocol_class, ProtocolClass::kTagged);
  EXPECT_TRUE(r.oracle_ok);
  EXPECT_FALSE(r.monitor_fired);
}

TEST(EndToEnd, HandoffSpecNeedsAndGetsControlMessages) {
  const auto r = pipeline(
      "(x.s |> y.r) & (y.s |> x.r) where color(x)=2", 0.0, 0.4, 2, 13);
  EXPECT_EQ(r.classification.protocol_class, ProtocolClass::kGeneral);
  EXPECT_TRUE(r.oracle_ok);
  EXPECT_FALSE(r.monitor_fired);
}

TEST(EndToEnd, KWeakerChainSpec) {
  const auto r = pipeline(
      "(a.s |> b.s) & (b.s |> c.s) & (c.r |> a.r)", 0.1, 0, 1, 15);
  EXPECT_EQ(r.classification.protocol_class, ProtocolClass::kTagged);
  EXPECT_TRUE(r.oracle_ok);
  EXPECT_FALSE(r.monitor_fired);
}

TEST(EndToEnd, TaglessSpecRunsBare) {
  const auto r = pipeline("(x.s |> y.s) & (y.s |> x.s)", 0.0, 0, 1, 17);
  EXPECT_EQ(r.classification.protocol_class, ProtocolClass::kTagless);
  EXPECT_TRUE(r.oracle_ok);
  EXPECT_FALSE(r.monitor_fired);
}

TEST(EndToEnd, MonitorCatchesDeliberateSabotage) {
  // Run the *wrong* protocol (async) for a causal spec under heavy
  // jitter: the monitor fires during the run and the oracle agrees.
  const ParseResult parsed =
      parse_predicate("(x.s |> y.s) & (y.r |> x.r)");
  ASSERT_TRUE(parsed.ok());
  Rng rng(19);
  WorkloadOptions wopts;
  wopts.n_processes = 3;
  wopts.n_messages = 120;
  wopts.mean_gap = 0.1;
  const Workload workload = random_workload(wopts, rng);
  auto monitor = std::make_shared<OnlineMonitor>(
      workload_universe(workload), *parsed.predicate);
  SimOptions sopts;
  sopts.seed = 23;
  sopts.network.jitter_mean = 4.0;
  sopts.observers.add(monitor_observer(monitor));
  const SynthesisResult wrong = synthesize(
      *parse_predicate("(x.s |> y.s) & (y.s |> x.s)").predicate);
  ASSERT_TRUE(wrong.factory.has_value());  // the do-nothing protocol
  const SimResult result =
      simulate(workload, *wrong.factory, wopts.n_processes, sopts);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(monitor->violated());
  const auto run = result.trace.to_user_run();
  ASSERT_TRUE(run.has_value());
  EXPECT_FALSE(satisfies(*run, *parsed.predicate));
}

TEST(EndToEnd, DiagramOfASynthesizedRunIsPrintable) {
  const ParseResult parsed =
      parse_predicate("(x.s |> y.s) & (y.r |> x.r)");
  ASSERT_TRUE(parsed.ok());
  const SynthesisResult synthesis = synthesize(*parsed.predicate);
  ASSERT_TRUE(synthesis.factory.has_value());
  Rng rng(29);
  WorkloadOptions wopts;
  wopts.n_processes = 3;
  wopts.n_messages = 5;
  const Workload workload = random_workload(wopts, rng);
  const SimResult result =
      simulate(workload, *synthesis.factory, wopts.n_processes);
  ASSERT_TRUE(result.completed);
  const auto system = result.trace.to_system_run();
  ASSERT_TRUE(system.has_value());
  const std::string text = time_diagram(*system);
  EXPECT_NE(text.find("P0:"), std::string::npos);
  EXPECT_NE(text.find("s*0"), std::string::npos);
}

}  // namespace
}  // namespace msgorder
