#include <gtest/gtest.h>

#include "src/checker/limit_sets.hpp"
#include "src/checker/violation.hpp"
#include "src/protocols/async.hpp"
#include "src/protocols/causal_rst.hpp"
#include "src/protocols/causal_ses.hpp"
#include "src/spec/library.hpp"
#include "tests/sim_harness.hpp"

namespace msgorder {
namespace {

TEST(CausalRst, EnforcesCausalOrderingAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto result =
        run_protocol(CausalRstProtocol::factory(), 4, 120, seed);
    EXPECT_TRUE(in_causal(result.run)) << "seed " << seed;
    EXPECT_TRUE(satisfies(result.run, causal_ordering()));
    EXPECT_TRUE(satisfies(result.run, causal_ordering_b1()));
    EXPECT_TRUE(satisfies(result.run, causal_ordering_b3()));
  }
}

TEST(CausalSes, EnforcesCausalOrderingAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto result =
        run_protocol(CausalSesProtocol::factory(), 4, 120, seed);
    EXPECT_TRUE(in_causal(result.run)) << "seed " << seed;
  }
}

TEST(CausalRst, CausalImpliesFifoHolds) {
  const auto result =
      run_protocol(CausalRstProtocol::factory(), 4, 150, 7);
  EXPECT_TRUE(satisfies(result.run, fifo()));
}

TEST(CausalProtocols, TagSizesMatchTheory) {
  // RST always tags n^2 * 4 bytes.  SES tags the sender's vector time
  // plus one (destination, vector) pair per *communicated-with*
  // destination, so it wins when the communication graph is sparse —
  // here a ring where each process only ever sends to its successor.
  const std::size_t n = 8;
  std::vector<std::tuple<SimTime, ProcessId, ProcessId, int>> entries;
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<ProcessId>(i % n);
    entries.push_back({0.3 * i, src,
                       static_cast<ProcessId>((src + 1) % n), 0});
  }
  const Workload w = scripted_workload(entries);
  SimOptions sopts;
  sopts.network.jitter_mean = 3.0;
  const SimResult rst = simulate(w, CausalRstProtocol::factory(), n, sopts);
  const SimResult ses = simulate(w, CausalSesProtocol::factory(), n, sopts);
  ASSERT_TRUE(rst.completed);
  ASSERT_TRUE(ses.completed);
  EXPECT_EQ(rst.trace.mean_tag_bytes(), static_cast<double>(n * n * 4));
  EXPECT_LT(ses.trace.mean_tag_bytes(), rst.trace.mean_tag_bytes() / 2);
  EXPECT_EQ(rst.trace.control_packets(), 0u);
  EXPECT_EQ(ses.trace.control_packets(), 0u);
}

TEST(CausalProtocols, DelaysDeliveryRelativeToAsync) {
  // Under heavy jitter causal protocols buffer messages: the mean
  // delivery delay exceeds async's (which is zero).
  const auto async_r = run_protocol(AsyncProtocol::factory(), 4, 200, 5);
  const auto rst = run_protocol(CausalRstProtocol::factory(), 4, 200, 5);
  EXPECT_EQ(async_r.sim.trace.mean_delivery_delay(), 0.0);
  EXPECT_GT(rst.sim.trace.mean_delivery_delay(), 0.0);
  EXPECT_GE(rst.sim.trace.mean_latency(), async_r.sim.trace.mean_latency());
}

TEST(CausalRst, TriangleScenario) {
  // The classic triangle: P0 -> P2 (slow), P0 -> P1, P1 -> P2.  The P1
  // relay must not be delivered at P2 before P0's direct message.
  const Workload w = scripted_workload({
      {0.0, 0, 2, 0},  // m0: direct, will be slow
      {0.1, 0, 1, 0},  // m1: to the relay
      {5.0, 1, 2, 0},  // m2: relay to P2 (sent after m1 delivered)
  });
  SimOptions sopts;
  sopts.network.jitter_mean = 20.0;  // m0 can be very slow
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sopts.seed = seed;
    const SimResult sim =
        simulate(w, CausalRstProtocol::factory(), 3, sopts);
    ASSERT_TRUE(sim.completed) << sim.error;
    const auto run = sim.trace.to_user_run();
    ASSERT_TRUE(run.has_value());
    if (run->before(0, UserEventKind::kSend, 2, UserEventKind::kSend)) {
      EXPECT_FALSE(run->before(2, UserEventKind::kDeliver, 0,
                               UserEventKind::kDeliver));
    }
  }
}

TEST(CausalSes, TriangleScenario) {
  const Workload w = scripted_workload({
      {0.0, 0, 2, 0},
      {0.1, 0, 1, 0},
      {5.0, 1, 2, 0},
  });
  SimOptions sopts;
  sopts.network.jitter_mean = 20.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sopts.seed = seed;
    const SimResult sim =
        simulate(w, CausalSesProtocol::factory(), 3, sopts);
    ASSERT_TRUE(sim.completed) << sim.error;
    const auto run = sim.trace.to_user_run();
    ASSERT_TRUE(run.has_value());
    EXPECT_TRUE(in_causal(*run));
  }
}

TEST(CausalProtocols, AgreeOnSafetyNotOnSchedule) {
  // Both protocols produce causally ordered runs, but not necessarily
  // the same run (SES may deliver earlier than RST in some corners).
  const auto rst = run_protocol(CausalRstProtocol::factory(), 5, 300, 11);
  const auto ses = run_protocol(CausalSesProtocol::factory(), 5, 300, 11);
  EXPECT_TRUE(in_causal(rst.run));
  EXPECT_TRUE(in_causal(ses.run));
}

TEST(CausalRst, HighLoadStress) {
  const auto result = run_protocol(CausalRstProtocol::factory(), 3, 600,
                                   13, 0.0, 1, /*mean_gap=*/0.05);
  EXPECT_TRUE(in_causal(result.run));
  EXPECT_TRUE(result.sim.trace.all_delivered());
}

}  // namespace
}  // namespace msgorder
