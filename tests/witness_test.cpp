// The Theorem 2/4 witness construction characterizes the classification
// exactly — enforced here for the spec zoo and for exhaustive 2-variable
// predicate censuses.
#include <gtest/gtest.h>

#include "src/checker/limit_sets.hpp"
#include "src/checker/violation.hpp"
#include "src/spec/classify.hpp"
#include "src/spec/library.hpp"
#include "src/spec/witness.hpp"

namespace msgorder {
namespace {

constexpr UserEventKind kKinds[] = {UserEventKind::kSend,
                                    UserEventKind::kDeliver};

void check_characterization(const ForbiddenPredicate& predicate) {
  const Classification verdict = classify(predicate);
  const auto witness = witness_run(predicate);
  switch (verdict.protocol_class) {
    case ProtocolClass::kTagless:
      // Order-0 cycle: B forces an event before itself, no witness.
      EXPECT_FALSE(witness.has_value()) << predicate.to_string();
      break;
    case ProtocolClass::kTagged:
      ASSERT_TRUE(witness.has_value()) << predicate.to_string();
      EXPECT_TRUE(in_async(*witness));
      EXPECT_FALSE(in_causal(*witness)) << predicate.to_string();
      EXPECT_FALSE(satisfies(*witness, predicate));
      break;
    case ProtocolClass::kGeneral:
      ASSERT_TRUE(witness.has_value()) << predicate.to_string();
      EXPECT_TRUE(in_causal(*witness)) << predicate.to_string();
      EXPECT_FALSE(in_sync(*witness)) << predicate.to_string();
      EXPECT_FALSE(satisfies(*witness, predicate));
      break;
    case ProtocolClass::kNotImplementable:
      if (verdict.normalized.triviality == NormalTriviality::kTautological) {
        EXPECT_FALSE(witness.has_value());
        break;
      }
      ASSERT_TRUE(witness.has_value()) << predicate.to_string();
      EXPECT_TRUE(in_sync(*witness)) << predicate.to_string();
      EXPECT_FALSE(satisfies(*witness, predicate));
      break;
  }
}

TEST(Witness, CausalOrderingWitnessIsTheOvertakingPair) {
  const auto witness = witness_run(causal_ordering());
  ASSERT_TRUE(witness.has_value());
  // Variables x (id 0) and y (id 1) plus one relay per cross-process
  // conjunct (the "message z" of the Lemma 3 proof).
  EXPECT_EQ(witness->message_count(), 4u);
  EXPECT_TRUE(witness->has_schedules());  // realizable, not just a poset
  EXPECT_TRUE(witness->before(0, UserEventKind::kSend, 1,
                              UserEventKind::kSend));
  EXPECT_TRUE(witness->before(1, UserEventKind::kDeliver, 0,
                              UserEventKind::kDeliver));
  EXPECT_FALSE(in_causal(*witness));
}

TEST(Witness, CrownWitnessIsCausalButNotSync) {
  for (std::size_t k = 2; k <= 5; ++k) {
    const auto witness = witness_run(sync_crown(k));
    ASSERT_TRUE(witness.has_value());
    EXPECT_TRUE(in_causal(*witness)) << k;
    EXPECT_FALSE(in_sync(*witness)) << k;
  }
}

TEST(Witness, AsyncZooHasNoWitness) {
  for (const ForbiddenPredicate& p : async_zoo()) {
    EXPECT_FALSE(witness_run(p).has_value()) << p.to_string();
  }
}

TEST(Witness, NotImplementableWitnessIsSync) {
  const auto witness = witness_run(receive_second_before_first());
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(in_sync(*witness));
  EXPECT_FALSE(satisfies(*witness, receive_second_before_first()));
}

TEST(Witness, RespectsColorConstraints) {
  const auto witness = witness_run(global_forward_flush(5));
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->color_of(1), 5);
  EXPECT_FALSE(satisfies(*witness, global_forward_flush(5)));
}

TEST(Witness, RespectsProcessConstraints) {
  const auto witness = witness_run(fifo());
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->message(0).src, witness->message(1).src);
  EXPECT_EQ(witness->message(0).dst, witness->message(1).dst);
  EXPECT_FALSE(satisfies(*witness, fifo()));
}

TEST(Witness, ContradictoryColorsYieldNothing) {
  ForbiddenPredicate p = causal_ordering();
  p.color_constraints = {{0, 1}, {0, 2}};
  EXPECT_FALSE(witness_run(p).has_value());
}

TEST(Witness, ZooCharacterization) {
  for (const NamedSpec& spec : spec_zoo()) {
    check_characterization(spec.predicate);
  }
}

TEST(Witness, ExhaustiveTwoConjunctCharacterization) {
  std::vector<Conjunct> edges;
  for (std::size_t from = 0; from < 2; ++from) {
    for (UserEventKind pk : kKinds) {
      for (UserEventKind q : kKinds) {
        edges.push_back({from, pk, 1 - from, q});
      }
    }
  }
  for (const Conjunct& a : edges) {
    for (const Conjunct& b : edges) {
      if (a == b) continue;
      check_characterization(make_predicate(2, {a, b}));
    }
  }
}

TEST(Witness, KWeakerWitnessChainLength) {
  for (std::size_t k = 0; k <= 3; ++k) {
    const auto witness = witness_run(k_weaker_causal(k));
    ASSERT_TRUE(witness.has_value());
    // k+2 variables plus one relay per conjunct (k+2 of them).
    EXPECT_EQ(witness->message_count(), 2 * (k + 2));
    EXPECT_FALSE(satisfies(*witness, k_weaker_causal(k)));
    // The relays themselves extend the send chain (x1, z1, x2, ..., w),
    // so the realized witness only satisfies specs with slack beyond the
    // doubled chain length 2k+4.
    EXPECT_TRUE(satisfies(*witness, k_weaker_causal(2 * k + 3)));
    EXPECT_FALSE(satisfies(*witness, k_weaker_causal(2 * k + 2)));
  }
}

}  // namespace
}  // namespace msgorder
