// Scope-enumeration tests (ISSUE 10): the verifier's exploration counts
// checked against hand-computed interleaving counts on a scenario small
// enough to enumerate on paper, plus the DPOR soundness/effectiveness
// suite (identical verdicts with and without reduction, and the
// reduction must actually pay).
//
// The paper-and-pencil scenario: 2 processes, p0 invokes x0 x1 x2, all
// to p1 (one hot channel).  Complete schedules interleave the 3 invokes
// I0<I1<I2 (program order) with 3 deliveries:
//
//   * FIFO channel: deliveries happen in emission order, so a complete
//     schedule is a ballot sequence of I's and D's — the Catalan number
//     C_3 = 5.
//   * Reordering channel: each delivery picks any in-flight packet, so
//     each ballot shape multiplies by the product of in-flight counts:
//     IIIDDD 3*2*1=6, IIDIDD 2*2*1=4, IIDDID 2*1*1=2, IDIIDD 1*2*1=2,
//     IDIDID 1*1*1=1 — 15 in total.
//   * Reordering channel with sleep-set POR: invokes (p0) and
//     deliveries (p1) commute, so one interleaving survives per
//     Mazurkiewicz trace; traces are distinguished by the delivery
//     permutation alone — 3! = 6.
#include <gtest/gtest.h>

#include "src/verify/scenario.hpp"
#include "src/verify/stacks.hpp"
#include "src/verify/verifier.hpp"

namespace msgorder {
namespace {

Scenario hot_channel(std::size_t n_messages) {
  Scenario s;
  s.name = "hot-channel";
  s.n_processes = 2;
  for (MessageId m = 0; m < n_messages; ++m) {
    s.messages.push_back({m, 0, 1, 0, -1});
  }
  return s;
}

ScenarioResult explore(const Scenario& scenario, const char* stack,
                       const VerifyOptions& options) {
  const VerifyTarget target = *find_verify_target(stack);
  return verify_scenario(scenario, target.factory, target.spec, options);
}

TEST(VerifyEnumeration, ReorderingChannelExploresAll15Interleavings) {
  VerifyOptions options;
  options.por = false;
  options.state_cache = false;
  const ScenarioResult r = explore(hot_channel(3), "async", options);
  EXPECT_EQ(r.verdict, "verified");
  EXPECT_EQ(r.complete_runs, 15u);
}

TEST(VerifyEnumeration, FifoChannelExploresTheCatalanBallotSequences) {
  VerifyOptions options;
  options.por = false;
  options.state_cache = false;
  options.channel_model = ChannelModel::kFifo;
  const ScenarioResult r = explore(hot_channel(3), "async", options);
  EXPECT_EQ(r.verdict, "verified");
  EXPECT_EQ(r.complete_runs, 5u);  // Catalan C_3
}

TEST(VerifyEnumeration, SleepSetsKeepOneRunPerMazurkiewiczTrace) {
  VerifyOptions options;  // por + state cache on (the defaults)
  const ScenarioResult r = explore(hot_channel(3), "async", options);
  EXPECT_EQ(r.verdict, "verified");
  EXPECT_EQ(r.complete_runs, 6u);  // 3! delivery permutations
}

TEST(VerifyEnumeration, FourMessagesScaleTheSameWay) {
  VerifyOptions unreduced;
  unreduced.por = false;
  unreduced.state_cache = false;
  // Ballot shapes * in-flight products for n=4; the closed form is
  // (2n-1)!! * C_n / (n+1)... easier by hand: 105 schedules.  FIFO is
  // C_4 = 14, POR is 4! = 24.
  EXPECT_EQ(explore(hot_channel(4), "async", unreduced).complete_runs,
            105u);
  VerifyOptions fifo = unreduced;
  fifo.channel_model = ChannelModel::kFifo;
  EXPECT_EQ(explore(hot_channel(4), "async", fifo).complete_runs, 14u);
  VerifyOptions reduced;
  EXPECT_EQ(explore(hot_channel(4), "async", reduced).complete_runs, 24u);
}

TEST(VerifyDpor, SameVerdictsWithAndWithoutReduction) {
  // Soundness: on every standard scenario, for a clean stack and for a
  // buggy one, the reduced exploration reaches the same verdict as the
  // full one.
  VerifyOptions reduced;
  VerifyOptions unreduced;
  unreduced.por = false;
  unreduced.state_cache = false;
  for (const char* stack : {"fifo", "causal-rst", "mutant:fifo-overtake",
                            "mutant:causal-no-merge"}) {
    for (const Scenario& scenario : standard_scenarios(2, 3)) {
      const ScenarioResult full = explore(scenario, stack, unreduced);
      const ScenarioResult por = explore(scenario, stack, reduced);
      EXPECT_EQ(full.verdict, por.verdict)
          << stack << " / " << scenario.name;
    }
  }
}

TEST(VerifyDpor, ReductionCutsTheStateCountByMoreThanHalf) {
  VerifyOptions reduced;
  VerifyOptions unreduced;
  unreduced.por = false;
  unreduced.state_cache = false;
  std::size_t states_por = 0;
  std::size_t states_full = 0;
  for (const Scenario& scenario : standard_scenarios(3, 4)) {
    states_por += explore(scenario, "fifo", reduced).states;
    states_full += explore(scenario, "fifo", unreduced).states;
  }
  EXPECT_GT(states_full, 2 * states_por)
      << "full=" << states_full << " por=" << states_por;
}

}  // namespace
}  // namespace msgorder
