// Tests for the causal trace log (ISSUE 9 tentpole): format round-trip,
// the sequential == sharded record-for-record equality property across
// the full protocol registry, the metrics/run-report surfacing of the
// log counters, and the flight-recorder post-mortem cross-reference on
// engine error paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/json_value.hpp"
#include "src/obs/report.hpp"
#include "src/obs/tracelog.hpp"
#include "src/protocols/fifo.hpp"
#include "src/protocols/registry.hpp"
#include "src/sim/network.hpp"
#include "src/sim/simulator.hpp"

namespace msgorder {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "msgorder_" + name;
}

Workload test_workload(std::size_t n_processes, std::size_t n_messages,
                       std::uint64_t seed) {
  Rng rng(seed);
  WorkloadOptions wopts;
  wopts.n_processes = n_processes;
  wopts.n_messages = n_messages;
  wopts.mean_gap = 0.3;
  return random_workload(wopts, rng);
}

/// Run `factory` with a tracelog attached; returns the loaded log.
std::optional<LoadedTraceLog> record_run(const ProtocolFactory& factory,
                                         const Workload& workload,
                                         std::size_t n_processes,
                                         const std::string& log_path,
                                         std::size_t shards,
                                         std::uint64_t perturb_xor = 0) {
  ObservabilityOptions oopts;
  oopts.tracelog = log_path;
  Observability obs(oopts);
  SimOptions sopts;
  sopts.seed = 99;
  sopts.network.jitter_mean = 3.0;
  sopts.shards = shards;
  sopts.observability = &obs;
  if (perturb_xor != 0) {
    sopts.network.perturb_channel_xor = perturb_xor;
    sopts.network.perturb_src = workload.front().message.src;
    sopts.network.perturb_dst = workload.front().message.dst;
  }
  const SimResult result =
      simulate(workload, factory, n_processes, sopts);
  EXPECT_TRUE(result.completed) << result.error;
  if (!result.completed) return std::nullopt;
  std::string error;
  auto log = load_tracelog(log_path, &error);
  EXPECT_TRUE(log.has_value()) << error;
  return log;
}

TEST(TraceLog, WriterReaderRoundTrip) {
  const std::string path = temp_path("roundtrip.tracelog");
  TraceLogWriter writer(path);
  TraceLogHeader header;
  header.schema = "msgorder.tracelog/1";
  header.engine = "sequential";
  header.protocol = "unit";
  header.n_processes = 3;
  header.n_messages = 2;
  header.seed = 42;
  header.lookahead = 1.5;
  writer.begin_run(header);

  writer.append_event(0, SystemEvent{0, EventKind::kInvoke}, 0.5, 11, 1, 0);
  writer.append_event(0, SystemEvent{0, EventKind::kSend}, 0.5, 11, 1, 0);
  HoldReason reason;
  reason.kind = HoldKind::kWaitPredecessor;
  reason.blocking_msg = 0;
  writer.append_hold(1, 1, reason, 0.75, 12);
  writer.append_event(1, SystemEvent{0, EventKind::kReceive}, 1.25, 13, 0, 0);
  writer.append_event(1, SystemEvent{0, EventKind::kDeliver}, 1.25, 13, 0, 0);
  writer.append_note("invariant: all clear", 2.0);
  writer.finish();
  ASSERT_TRUE(writer.ok()) << writer.error();
  EXPECT_EQ(writer.events_written(), 6u);

  std::string error;
  const auto log = load_tracelog(path, &error);
  ASSERT_TRUE(log.has_value()) << error;
  EXPECT_EQ(log->header.schema, "msgorder.tracelog/1");
  EXPECT_EQ(log->header.engine, "sequential");
  EXPECT_EQ(log->header.protocol, "unit");
  EXPECT_EQ(log->header.n_processes, 3u);
  EXPECT_EQ(log->header.seed, 42u);
  EXPECT_DOUBLE_EQ(log->header.lookahead, 1.5);
  ASSERT_EQ(log->records.size(), 6u);
  ASSERT_EQ(log->events.size(), 4u);

  const TraceLogRecord& send = log->records[1];
  EXPECT_EQ(send.type, TraceLogRecord::Type::kEvent);
  EXPECT_EQ(send.event.kind, EventKind::kSend);
  EXPECT_EQ(send.process, 0u);
  EXPECT_EQ(send.peer, 1u);
  EXPECT_DOUBLE_EQ(send.time, 0.5);
  EXPECT_EQ(send.tiebreak, 11u);
  // Online Lamport clocks: invoke=1, send=2, receive=max(0,2)+1=3,
  // deliver=4.
  EXPECT_EQ(log->records[0].lamport, 1u);
  EXPECT_EQ(send.lamport, 2u);
  EXPECT_EQ(log->records[3].lamport, 3u);
  EXPECT_EQ(log->records[4].lamport, 4u);

  const TraceLogRecord& hold = log->records[2];
  EXPECT_EQ(hold.type, TraceLogRecord::Type::kHold);
  EXPECT_EQ(hold.held_msg, 1u);
  EXPECT_EQ(hold.process, 1u);
  EXPECT_EQ(hold.reason.kind, HoldKind::kWaitPredecessor);
  ASSERT_TRUE(hold.reason.blocking_msg.has_value());
  EXPECT_EQ(*hold.reason.blocking_msg, 0u);
  EXPECT_FALSE(hold.reason.blocking_proc.has_value());

  const TraceLogRecord& note = log->records[5];
  EXPECT_EQ(note.type, TraceLogRecord::Type::kNote);
  EXPECT_EQ(note.note, "invariant: all clear");
  EXPECT_DOUBLE_EQ(note.time, 2.0);

  // Streaming reader agrees with the bulk loader.
  TraceLogStream stream;
  ASSERT_TRUE(stream.open(path, &error)) << error;
  TraceLogRecord rec;
  for (const TraceLogRecord& expected : log->records) {
    ASSERT_EQ(stream.next(&rec, &error), 1) << error;
    EXPECT_TRUE(rec == expected);
  }
  EXPECT_EQ(stream.next(&rec, &error), 0);
  std::remove(path.c_str());
}

TEST(TraceLog, ChannelStreamSeedMatchesNetwork) {
  TraceLogHeader header;
  header.seed = 7071;
  EXPECT_EQ(header.channel_stream_seed(2, 5),
            Network::channel_seed(7071, 2, 5));
  EXPECT_NE(header.channel_stream_seed(2, 5),
            header.channel_stream_seed(5, 2));
}

// The headline property: for every shipped protocol, the sequential and
// the 4-shard engine write record-for-record identical logs — events,
// holds, Lamport clocks, tiebreaks, everything.
TEST(TraceLog, SequentialAndShardedLogsAreIdenticalAcrossRegistry) {
  const Workload workload = test_workload(6, 120, 2025);
  for (const RegisteredProtocol& rp : standard_protocols()) {
    const std::string seq_path = temp_path(rp.name + "_seq.tracelog");
    const std::string shd_path = temp_path(rp.name + "_shd.tracelog");
    const auto seq = record_run(rp.factory, workload, 6, seq_path, 1);
    const auto shd = record_run(rp.factory, workload, 6, shd_path, 4);
    ASSERT_TRUE(seq.has_value()) << rp.name;
    ASSERT_TRUE(shd.has_value()) << rp.name;
    EXPECT_EQ(seq->header.engine, "sequential") << rp.name;
    EXPECT_EQ(shd->header.engine, "sharded") << rp.name;
    EXPECT_EQ(seq->header.seed, shd->header.seed) << rp.name;
    ASSERT_EQ(seq->records.size(), shd->records.size()) << rp.name;
    for (std::size_t i = 0; i < seq->records.size(); ++i) {
      ASSERT_TRUE(seq->records[i] == shd->records[i])
          << rp.name << " diverges at record " << i;
    }
    std::remove(seq_path.c_str());
    std::remove(shd_path.c_str());
  }
}

// A perturbed channel RNG stream must actually change the log — the
// bisector tests in obs_query_test rely on this fixture behaving.
TEST(TraceLog, PerturbedChannelSeedChangesTheLog) {
  const Workload workload = test_workload(4, 80, 7);
  const std::string base_path = temp_path("perturb_base.tracelog");
  const std::string pert_path = temp_path("perturb_xor.tracelog");
  const auto base =
      record_run(FifoProtocol::factory(), workload, 4, base_path, 1);
  const auto pert =
      record_run(FifoProtocol::factory(), workload, 4, pert_path, 1,
                 0x9e3779b97f4a7c15ULL);
  ASSERT_TRUE(base.has_value());
  ASSERT_TRUE(pert.has_value());
  bool differs = base->records.size() != pert->records.size();
  for (std::size_t i = 0; !differs && i < base->records.size(); ++i) {
    differs = !(base->records[i] == pert->records[i]);
  }
  EXPECT_TRUE(differs);
  std::remove(base_path.c_str());
  std::remove(pert_path.c_str());
}

TEST(TraceLog, CountersSurfaceInMetricsAndRunReport) {
  const Workload workload = test_workload(4, 60, 12);
  const std::string path = temp_path("counters.tracelog");
  ObservabilityOptions oopts;
  oopts.tracelog = path;
  Observability obs(oopts);
  SimOptions sopts;
  sopts.seed = 5;
  sopts.observability = &obs;
  const SimResult result =
      simulate(workload, FifoProtocol::factory(), 4, sopts);
  ASSERT_TRUE(result.completed) << result.error;

  ASSERT_NE(obs.tracelog(), nullptr);
  ASSERT_TRUE(obs.tracelog()->ok()) << obs.tracelog()->error();
  std::string error;
  const auto log = load_tracelog(path, &error);
  ASSERT_TRUE(log.has_value()) << error;
  EXPECT_EQ(obs.tracelog()->events_written(), log->records.size());
  // 60 messages x 4 system events each, plus holds and notes.
  EXPECT_GE(log->events.size(), 240u);

  const Counter* events = obs.metrics().find_counter("tracelog.events_written");
  const Counter* bytes = obs.metrics().find_counter("tracelog.bytes_written");
  ASSERT_NE(events, nullptr);
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(events->value(), obs.tracelog()->events_written());
  EXPECT_EQ(bytes->value(), obs.tracelog()->bytes_written());

  RunReportOptions ropts;
  ropts.protocol = "fifo";
  ropts.n_processes = 4;
  ropts.seed = sopts.seed;
  const std::string json = run_report_json(result, ropts, &obs);
  EXPECT_NE(json.find("\"tracelog\":{\"path\":"), std::string::npos);
  EXPECT_NE(json.find("\"events_written\":" +
                      std::to_string(obs.tracelog()->events_written())),
            std::string::npos);
  EXPECT_NE(json.find("\"bytes_written\":" +
                      std::to_string(obs.tracelog()->bytes_written())),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceLog, AbsentByDefaultAndNullInReport) {
  const Workload workload = test_workload(3, 20, 3);
  Observability obs;
  SimOptions sopts;
  sopts.observability = &obs;
  const SimResult result =
      simulate(workload, FifoProtocol::factory(), 3, sopts);
  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_EQ(obs.tracelog(), nullptr);
  RunReportOptions ropts;
  const std::string json = run_report_json(result, ropts, &obs);
  EXPECT_NE(json.find("\"tracelog\":null"), std::string::npos);
}

// Satellite (a): the sharded engine's error path arms the post-mortem —
// the dump names the tripping shard and cross-references the tracelog.
TEST(TraceLog, ShardedCapTripDumpsPostmortemWithTraceLogPath) {
  const Workload workload = test_workload(4, 200, 17);
  const std::string log_path = temp_path("captrip.tracelog");
  const std::string dump_path = temp_path("captrip_postmortem.json");
  ObservabilityOptions oopts;
  oopts.flight_recorder = true;
  oopts.tracelog = log_path;
  Observability obs(oopts);
  SimOptions sopts;
  sopts.seed = 23;
  sopts.shards = 4;
  sopts.max_events = 50;  // trips long before 200 messages complete
  sopts.observability = &obs;
  const SimResult result =
      simulate(workload, FifoProtocol::factory(), 4, sopts);
  ASSERT_FALSE(result.completed);
  EXPECT_NE(result.error.find("event cap exceeded in shard"),
            std::string::npos)
      << result.error;

  std::string error;
  ASSERT_TRUE(dump_postmortem_if_red(dump_path, result, &obs, nullptr,
                                     &error))
      << error;
  const auto dump = json_parse_file(dump_path, &error);
  ASSERT_TRUE(dump.has_value()) << error;
  // The dump must name the cause and cross-reference the tracelog path.
  const auto cause = dump->string_at("cause");
  ASSERT_TRUE(cause.has_value());
  EXPECT_NE(cause->find("event cap exceeded in shard"), std::string::npos)
      << *cause;
  const auto tracelog = dump->string_at("tracelog");
  ASSERT_TRUE(tracelog.has_value());
  EXPECT_EQ(*tracelog, log_path);

  // The log on disk is finished (flushed) despite the error exit.
  const auto log = load_tracelog(log_path, &error);
  ASSERT_TRUE(log.has_value()) << error;
  EXPECT_GT(log->records.size(), 0u);
  // The last record is the engine's invariant note naming the shard.
  const TraceLogRecord& last = log->records.back();
  EXPECT_EQ(last.type, TraceLogRecord::Type::kNote);
  EXPECT_NE(last.note.find("event cap exceeded in shard"),
            std::string::npos)
      << last.note;
  std::remove(log_path.c_str());
  std::remove(dump_path.c_str());
}

}  // namespace
}  // namespace msgorder
