#include <gtest/gtest.h>

#include "src/checker/limit_sets.hpp"
#include "src/checker/violation.hpp"
#include "src/protocols/causal_rst.hpp"
#include "src/protocols/global_flush.hpp"
#include "src/protocols/synthesized.hpp"
#include "src/spec/library.hpp"
#include "tests/sim_harness.hpp"

namespace msgorder {
namespace {

TEST(GlobalFlush, SatisfiesItsSpecAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto result = run_protocol(GlobalFlushProtocol::factory(1), 4,
                                     150, seed, /*red_fraction=*/0.3);
    EXPECT_TRUE(satisfies(result.run, global_forward_flush(1)))
        << "seed " << seed;
    EXPECT_TRUE(result.sim.trace.all_delivered());
    EXPECT_EQ(result.sim.trace.control_packets(), 0u);
  }
}

TEST(GlobalFlush, WeakerThanCausalOrdering) {
  // Ordinary traffic may overtake: some seed violates plain causal.
  bool non_causal = false;
  for (std::uint64_t seed = 1; seed <= 20 && !non_causal; ++seed) {
    const auto result = run_protocol(GlobalFlushProtocol::factory(1), 4,
                                     150, seed, /*red_fraction=*/0.2);
    non_causal = !in_causal(result.run);
  }
  EXPECT_TRUE(non_causal);
}

TEST(GlobalFlush, BuffersLessThanCausal) {
  double flush_total = 0;
  double causal_total = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto flush = run_protocol(GlobalFlushProtocol::factory(1), 4,
                                    200, seed, /*red_fraction=*/0.15);
    const auto causal = run_protocol(CausalRstProtocol::factory(), 4, 200,
                                     seed, /*red_fraction=*/0.15);
    flush_total += flush.sim.trace.mean_delivery_delay();
    causal_total += causal.sim.trace.mean_delivery_delay();
  }
  EXPECT_LT(flush_total, causal_total);
}

TEST(GlobalFlush, AllRedDegeneratesTowardCausal) {
  // With every message red, the red check dominates and causal ordering
  // holds outright.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto result = run_protocol(GlobalFlushProtocol::factory(1), 4,
                                     120, seed, /*red_fraction=*/1.0);
    EXPECT_TRUE(in_causal(result.run)) << "seed " << seed;
  }
}

TEST(GlobalFlush, NoRedBehavesLikeAsync) {
  const auto result = run_protocol(GlobalFlushProtocol::factory(1), 4,
                                   150, 5, /*red_fraction=*/0.0);
  EXPECT_EQ(result.sim.trace.mean_delivery_delay(), 0.0);
}

TEST(GlobalFlush, CrossProcessRelayScenario) {
  // x: P0 -> P2 (slow).  red y: P0 -> P1 (so x.s |> y.s).  After
  // delivering y, P1 relays w: P1 -> P2.  If w overtook x at P2, the
  // user view would contain y.r |> w.s |> w.r |> ... with x.r after —
  // completing the forbidden pattern; the red frontier on w must block
  // it.
  const Workload w = scripted_workload({
      {0.0, 0, 2, 0},  // x ordinary, slow
      {0.1, 0, 1, 1},  // y red
      {5.0, 1, 2, 0},  // w ordinary relay (after y delivered)
  });
  SimOptions sopts;
  sopts.network.jitter_mean = 20.0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    sopts.seed = seed;
    const SimResult sim =
        simulate(w, GlobalFlushProtocol::factory(1), 3, sopts);
    ASSERT_TRUE(sim.completed) << sim.error;
    const auto run = sim.trace.to_user_run();
    ASSERT_TRUE(run.has_value());
    EXPECT_TRUE(satisfies(*run, global_forward_flush(1)))
        << "seed " << seed;
  }
}

TEST(GlobalFlush, ShapeDetection) {
  int red = 0;
  EXPECT_TRUE(is_global_flush_shaped(global_forward_flush(3), &red));
  EXPECT_EQ(red, 3);
  EXPECT_FALSE(is_global_flush_shaped(causal_ordering()));
  EXPECT_FALSE(is_global_flush_shaped(local_forward_flush()));
  EXPECT_FALSE(is_global_flush_shaped(fifo()));
  // Color on the overtaken variable instead (backward-ish): not the
  // forward-flush shape.
  ForbiddenPredicate backward = causal_ordering();
  backward.color_constraints = {{0, 1}};
  EXPECT_FALSE(is_global_flush_shaped(backward));
}

TEST(GlobalFlush, SynthesizerPicksIt) {
  const SynthesisResult r = synthesize(global_forward_flush(1));
  ASSERT_TRUE(r.factory.has_value());
  EXPECT_NE(r.rationale.find("global-flush"), std::string::npos);
  const auto result =
      run_protocol(*r.factory, 4, 120, 3, /*red_fraction=*/0.3);
  EXPECT_TRUE(satisfies(result.run, global_forward_flush(1)));
}

}  // namespace
}  // namespace msgorder
