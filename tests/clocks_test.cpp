#include <gtest/gtest.h>

#include "src/poset/clocks.hpp"

namespace msgorder {
namespace {

TEST(VectorClock, StartsAtZero) {
  VectorClock v(3);
  EXPECT_EQ(v[0], 0u);
  EXPECT_EQ(v[2], 0u);
  EXPECT_EQ(v.size(), 3u);
}

TEST(VectorClock, TickAndCompare) {
  VectorClock a(3);
  VectorClock b(3);
  a.tick(0);
  EXPECT_TRUE(b.leq(a));
  EXPECT_TRUE(b.lt(a));
  EXPECT_FALSE(a.leq(b));
  EXPECT_FALSE(a.lt(a));
  EXPECT_TRUE(a.leq(a));
}

TEST(VectorClock, ConcurrentClocks) {
  VectorClock a(2);
  VectorClock b(2);
  a.tick(0);
  b.tick(1);
  EXPECT_TRUE(a.concurrent_with(b));
  EXPECT_TRUE(b.concurrent_with(a));
  EXPECT_FALSE(a.concurrent_with(a));
}

TEST(VectorClock, MergeTakesMaximum) {
  VectorClock a(3);
  VectorClock b(3);
  a.tick(0);
  a.tick(0);
  b.tick(1);
  a.merge(b);
  EXPECT_EQ(a[0], 2u);
  EXPECT_EQ(a[1], 1u);
  EXPECT_TRUE(b.leq(a));
}

TEST(VectorClock, ByteSizeAndToString) {
  VectorClock v(4);
  EXPECT_EQ(v.byte_size(), 16u);
  v.tick(2);
  EXPECT_EQ(v.to_string(), "[0,0,1,0]");
}

TEST(MatrixClock, AtAndMerge) {
  MatrixClock a(2);
  MatrixClock b(2);
  a.at(0, 1) = 3;
  b.at(1, 0) = 2;
  b.at(0, 1) = 1;
  a.merge(b);
  EXPECT_EQ(a.at(0, 1), 3u);
  EXPECT_EQ(a.at(1, 0), 2u);
  EXPECT_EQ(a.at(0, 0), 0u);
}

TEST(MatrixClock, ByteSize) {
  MatrixClock m(3);
  EXPECT_EQ(m.byte_size(), 36u);
}

TEST(MatrixClock, Equality) {
  MatrixClock a(2);
  MatrixClock b(2);
  EXPECT_EQ(a, b);
  a.at(0, 0) = 1;
  EXPECT_NE(a, b);
}

TEST(MatrixClock, ToString) {
  MatrixClock m(2);
  m.at(0, 1) = 5;
  EXPECT_EQ(m.to_string(), "[0,5][0,0]");
}

}  // namespace
}  // namespace msgorder
