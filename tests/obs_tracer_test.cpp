// Tests for the causal span tracer (ISSUE 2): a traced simulation must
// produce well-formed Chrome Trace Event JSON with one named track per
// process, the full four-event lifecycle of every delivered message,
// and a flow arrow per causal send->receive edge.
#include <gtest/gtest.h>

#include <string>

#include "src/obs/json.hpp"
#include "src/obs/observability.hpp"
#include "src/protocols/fifo.hpp"
#include "src/sim/simulator.hpp"

namespace msgorder {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

constexpr std::size_t kProcesses = 3;
constexpr std::size_t kMessages = 25;

SimResult traced_run(Observability& obs) {
  Rng rng(5);
  WorkloadOptions wopts;
  wopts.n_processes = kProcesses;
  wopts.n_messages = kMessages;
  const Workload workload = random_workload(wopts, rng);
  SimOptions sopts;
  sopts.seed = 9;
  sopts.network.jitter_mean = 2.0;
  sopts.observability = &obs;
  return simulate(workload, FifoProtocol::factory(), kProcesses, sopts);
}

TEST(SpanTracer, TracerIsNullUnlessRequested) {
  Observability without;
  EXPECT_EQ(without.tracer(), nullptr);
  ObservabilityOptions oopts;
  oopts.tracing = true;
  Observability with(oopts);
  EXPECT_NE(with.tracer(), nullptr);
}

TEST(SpanTracer, EveryDeliveredMessageHasACompleteSpan) {
  ObservabilityOptions oopts;
  oopts.tracing = true;
  Observability obs(oopts);
  const SimResult result = traced_run(obs);
  ASSERT_TRUE(result.completed) << result.error;

  const SpanTracer& tracer = *obs.tracer();
  EXPECT_EQ(tracer.message_count(), kMessages);
  EXPECT_EQ(tracer.complete_span_count(), kMessages);
  EXPECT_EQ(tracer.process_count(), kProcesses);
}

TEST(SpanTracer, ChromeTraceIsValidJsonWithTracksSpansAndFlows) {
  ObservabilityOptions oopts;
  oopts.tracing = true;
  Observability obs(oopts);
  const SimResult result = traced_run(obs);
  ASSERT_TRUE(result.completed) << result.error;

  const std::string json = obs.tracer()->chrome_trace_json();
  std::string error;
  ASSERT_TRUE(json_validate(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  // One named track (thread) per simulated process.
  EXPECT_EQ(count_occurrences(json, "\"name\":\"thread_name\""), kProcesses);
  for (std::size_t p = 0; p < kProcesses; ++p) {
    EXPECT_NE(json.find("\"name\":\"P" + std::to_string(p) + "\""),
              std::string::npos)
        << "track P" << p;
  }

  // The four lifecycle instants, in the paper's notation, per message.
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"lifecycle\""), 4 * kMessages);
  EXPECT_NE(json.find("\"name\":\"x0.s*\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"x0.s\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"x0.r*\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"x0.r\""), std::string::npos);

  // Hold + buffer interval per message (complete spans, ph "X"), plus
  // one attributed inhibition slice per hold segment (ISSUE 4; a fifo
  // run on a jittered network inevitably buffers some deliveries).
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"hold\""), kMessages);
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"buffer\""), kMessages);
  const std::size_t inhibits = obs.tracer()->hold_segment_count();
  EXPECT_GT(inhibits, 0u);
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"inhibit\""), inhibits);
  EXPECT_NE(json.find("\"reason\":\"wait_predecessor\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""),
            2 * kMessages + inhibits);

  // One flow arrow (start + finish) per causal send->receive edge.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"s\""), kMessages);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"f\""), kMessages);
  EXPECT_EQ(count_occurrences(json, "\"bp\":\"e\""), kMessages);
}

TEST(SpanTracer, TimeScaleStretchesTimestamps) {
  SpanTracerOptions topts;
  topts.time_scale = 10.0;
  SpanTracer tracer(topts);
  tracer.on_event(0, SystemEvent{0, EventKind::kInvoke}, 2.0);
  tracer.on_event(0, SystemEvent{0, EventKind::kSend}, 3.0);
  const std::string json = tracer.chrome_trace_json();
  std::string error;
  ASSERT_TRUE(json_validate(json, &error)) << error;
  EXPECT_NE(json.find("\"ts\":20"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":30"), std::string::npos) << json;
  EXPECT_EQ(tracer.complete_span_count(), 0u);
  EXPECT_EQ(tracer.message_count(), 1u);
}

TEST(SpanTracer, PartialLifecyclesNeverEmitFlowsOrBuffers) {
  SpanTracer tracer;
  // Only invoke+send observed: a hold slice and instants, but no
  // receive-side artifacts.
  tracer.on_event(1, SystemEvent{0, EventKind::kInvoke}, 1.0);
  tracer.on_event(1, SystemEvent{0, EventKind::kSend}, 1.5);
  const std::string json = tracer.chrome_trace_json();
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"hold\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"buffer\""), 0u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"s\""), 0u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"f\""), 0u);
}

}  // namespace
}  // namespace msgorder
