// Tests for the Trace overhead statistics (ISSUE 2 satellite): the
// count_* accounting (control/user packets, bytes, drops,
// retransmissions, duplicates) across protocol classes and networks,
// and the metrics instruments mirroring those counts.
#include <gtest/gtest.h>

#include "src/obs/observability.hpp"
#include "src/protocols/async.hpp"
#include "src/protocols/fifo.hpp"
#include "src/protocols/reliable.hpp"
#include "src/protocols/sync_sequencer.hpp"
#include "src/sim/simulator.hpp"

namespace msgorder {
namespace {

constexpr std::size_t kProcesses = 4;
constexpr std::size_t kMessages = 80;

SimResult run(const ProtocolFactory& factory, Observability* obs = nullptr,
              double loss = 0.0) {
  Rng rng(13);
  WorkloadOptions wopts;
  wopts.n_processes = kProcesses;
  wopts.n_messages = kMessages;
  wopts.mean_gap = 0.3;
  const Workload workload = random_workload(wopts, rng);
  SimOptions sopts;
  sopts.seed = 21;
  sopts.network.jitter_mean = 2.0;
  sopts.network.loss_probability = loss;
  sopts.observability = obs;
  return simulate(workload, factory, kProcesses, sopts);
}

TEST(TraceStats, AsyncIsPureZeroOverhead) {
  const SimResult result = run(AsyncProtocol::factory());
  ASSERT_TRUE(result.completed) << result.error;
  const Trace& t = result.trace;
  EXPECT_EQ(t.user_packets(), kMessages);
  EXPECT_EQ(t.control_packets(), 0u);
  EXPECT_EQ(t.control_bytes(), 0u);
  EXPECT_EQ(t.tag_bytes(), 0u);
  EXPECT_EQ(t.drops(), 0u);
  EXPECT_EQ(t.retransmissions(), 0u);
  EXPECT_EQ(t.duplicate_arrivals(), 0u);
  EXPECT_DOUBLE_EQ(t.control_packets_per_message(), 0);
  EXPECT_DOUBLE_EQ(t.mean_tag_bytes(), 0);
}

TEST(TraceStats, FifoPaysFourTagBytesPerMessage) {
  const SimResult result = run(FifoProtocol::factory());
  ASSERT_TRUE(result.completed) << result.error;
  const Trace& t = result.trace;
  EXPECT_EQ(t.control_packets(), 0u);
  EXPECT_EQ(t.tag_bytes(), 4 * kMessages);
  EXPECT_DOUBLE_EQ(t.mean_tag_bytes(), 4);
}

TEST(TraceStats, SyncSequencerPaysControlTraffic) {
  const SimResult result = run(SyncSequencerProtocol::factory());
  ASSERT_TRUE(result.completed) << result.error;
  const Trace& t = result.trace;
  EXPECT_EQ(t.user_packets(), kMessages);
  EXPECT_GT(t.control_packets(), 0u);
  EXPECT_GT(t.control_bytes(), 0u);
  EXPECT_GT(t.control_packets_per_message(), 0.0);
}

TEST(TraceStats, LossyNetworkCountsDropsRetransmissionsAndDuplicates) {
  const SimResult result =
      run(ReliableProtocol::wrap(AsyncProtocol::factory()), nullptr, 0.2);
  ASSERT_TRUE(result.completed) << result.error;
  const Trace& t = result.trace;
  EXPECT_TRUE(t.all_delivered());
  EXPECT_GT(t.drops(), 0u);
  EXPECT_GT(t.retransmissions(), 0u);
  // A retransmission whose original survived arrives twice.
  EXPECT_GT(t.duplicate_arrivals(), 0u);
}

TEST(TraceStats, InstrumentsMirrorTheTraceCounts) {
  Observability obs;
  const SimResult result =
      run(ReliableProtocol::wrap(FifoProtocol::factory()), &obs, 0.15);
  ASSERT_TRUE(result.completed) << result.error;
  const Trace& t = result.trace;
  const SimInstruments& ins = obs.instruments();
  EXPECT_EQ(ins.user_packets->value(), t.user_packets());
  EXPECT_EQ(ins.control_packets->value(), t.control_packets());
  EXPECT_EQ(ins.control_bytes->value(), t.control_bytes());
  EXPECT_EQ(ins.tag_bytes->value(), t.tag_bytes());
  EXPECT_EQ(ins.drops->value(), t.drops());
  EXPECT_EQ(ins.retransmissions->value(), t.retransmissions());
  EXPECT_EQ(ins.duplicate_arrivals->value(), t.duplicate_arrivals());
  // Every message's latency was recorded once; the buffered-depth gauge
  // returned to zero after the last delivery.
  EXPECT_EQ(ins.latency->count(), kMessages);
  EXPECT_DOUBLE_EQ(ins.buffered_depth->value(), 0);
  EXPECT_GE(ins.buffered_depth->max(), 0);
  // 4 system events per delivered message, at least.
  EXPECT_GE(ins.events->value(), 4 * kMessages);
}

}  // namespace
}  // namespace msgorder
