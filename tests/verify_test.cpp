// The verifier's clean-stack gate (ISSUE 10): every registry stack and
// the synthesized causal stack must verify on the whole standard
// scenario set at (3 processes, 4 messages) under both FIFO and
// reordering channels, the msgorder.verify/1 artifact must validate,
// and the --quick budget must degrade to "bounded" — never to a false
// "verified".
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/json.hpp"
#include "src/verify/report.hpp"
#include "src/verify/scenario.hpp"
#include "src/verify/stacks.hpp"
#include "src/verify/verifier.hpp"

namespace msgorder {
namespace {

constexpr std::size_t kProcs = 3;
constexpr std::size_t kMsgs = 4;

TEST(VerifyClean, EveryStackVerifiesUnderReorderingChannels) {
  const auto scenarios = standard_scenarios(kProcs, kMsgs);
  VerifyOptions options;
  options.channel_model = ChannelModel::kReorder;
  for (const VerifyTarget& target : verify_targets(false)) {
    const StackReport report = verify_stack(
        target.name, target.factory, target.spec, scenarios, options);
    EXPECT_EQ(report.verdict, "verified") << target.name;
    for (const ScenarioResult& s : report.scenarios) {
      EXPECT_EQ(s.verdict, "verified")
          << target.name << " / " << s.scenario << ": " << s.detail;
      EXPECT_GE(s.complete_states, 1u)
          << target.name << " / " << s.scenario;
      EXPECT_FALSE(s.uncached)
          << target.name << " lacks snapshot(); exploration ran uncached";
    }
  }
}

TEST(VerifyClean, EveryStackVerifiesUnderFifoChannels) {
  const auto scenarios = standard_scenarios(kProcs, kMsgs);
  VerifyOptions options;
  options.channel_model = ChannelModel::kFifo;
  for (const VerifyTarget& target : verify_targets(false)) {
    const StackReport report = verify_stack(
        target.name, target.factory, target.spec, scenarios, options);
    EXPECT_EQ(report.verdict, "verified")
        << target.name << ": " << report.verdict;
  }
}

TEST(VerifyClean, RandomScenariosAlsoVerify) {
  std::vector<Scenario> scenarios;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    scenarios.push_back(random_scenario(kProcs, kMsgs, seed));
  }
  VerifyOptions options;
  for (const VerifyTarget& target : verify_targets(false)) {
    const StackReport report = verify_stack(
        target.name, target.factory, target.spec, scenarios, options);
    EXPECT_EQ(report.verdict, "verified") << target.name;
  }
}

TEST(VerifyQuick, StateBudgetYieldsBoundedNeverFalseVerified) {
  const auto scenarios = standard_scenarios(kProcs, kMsgs);
  VerifyOptions options;
  options.max_states = 10;  // far below any scenario's state count
  const VerifyTarget target = *find_verify_target("sync-token");
  const StackReport report = verify_stack(
      target.name, target.factory, target.spec, scenarios, options);
  EXPECT_EQ(report.verdict, "bounded");
  EXPECT_TRUE(report.ok());
  for (const ScenarioResult& s : report.scenarios) {
    EXPECT_EQ(s.verdict, "bounded") << s.scenario;
    EXPECT_LE(s.states, options.max_states) << s.scenario;
  }
}

TEST(VerifyQuick, BudgetDoesNotMaskAMutantForever) {
  // A bounded run that happens to hit the bug still reports it: the
  // budget caps exploration, it never converts a counterexample into
  // "bounded".  Give the budget enough room to reach the violation.
  const VerifyTarget mutant = *find_verify_target("mutant:causal-no-merge");
  VerifyOptions options;
  options.max_states = 100000;
  const StackReport report =
      verify_stack(mutant.name, mutant.factory, mutant.spec,
                   standard_scenarios(kProcs, kMsgs), options);
  EXPECT_EQ(report.verdict, "violation");
}

TEST(VerifyReport, ArtifactIsValidJson) {
  const auto scenarios = standard_scenarios(2, 3);
  VerifyOptions options;
  std::vector<StackReport> reports;
  for (const char* name : {"fifo", "mutant:fifo-overtake"}) {
    const VerifyTarget target = *find_verify_target(name);
    reports.push_back(verify_stack(target.name, target.factory,
                                   target.spec, scenarios, options));
  }
  JsonWriter w;
  write_verify_json(w, reports, 2, 3, options);
  std::string error;
  ASSERT_TRUE(json_validate(w.str(), &error)) << error;
  EXPECT_NE(w.str().find("\"schema\":\"msgorder.verify/1\""),
            std::string::npos);
  EXPECT_NE(w.str().find("\"verdict\":\"failed\""), std::string::npos);
  EXPECT_NE(w.str().find("\"counterexample\""), std::string::npos);
}

TEST(VerifyLossy, ReliabilityWrapMasksDropsOnTheFifoStack) {
  // One drop on any channel: the retransmission layer must still
  // deliver everything and keep the FIFO spec intact.  Cyclic control
  // traffic under the wrap may exhaust the depth budget as "bounded";
  // what the gate demands is the absence of counterexamples.
  Scenario burst;
  burst.name = "burst";
  burst.n_processes = 2;
  for (MessageId m = 0; m < 3; ++m) {
    burst.messages.push_back({m, 0, 1, 0, -1});
  }
  const VerifyTarget target = *find_verify_target("fifo");
  VerifyOptions options;
  options.channel_model = ChannelModel::kLossy;
  options.max_drops = 1;
  const ScenarioResult result =
      verify_scenario(burst, target.factory, target.spec, options);
  EXPECT_TRUE(result.ok()) << result.verdict << ": " << result.detail;
  EXPECT_FALSE(result.counterexample.has_value());
}

}  // namespace
}  // namespace msgorder
