// Shared helper for protocol tests: run a protocol over a randomized
// workload on an adversarial (high-jitter, non-FIFO) network and return
// the trace plus its user view.
#pragma once

#include <gtest/gtest.h>

#include "src/sim/simulator.hpp"

namespace msgorder {

struct HarnessResult {
  SimResult sim;
  UserRun run;
};

inline HarnessResult run_protocol(const ProtocolFactory& factory,
                                  std::size_t n_processes,
                                  std::size_t n_messages,
                                  std::uint64_t seed,
                                  double red_fraction = 0.0,
                                  int red_color = 1,
                                  double mean_gap = 0.3) {
  Rng rng(seed);
  WorkloadOptions wopts;
  wopts.n_processes = n_processes;
  wopts.n_messages = n_messages;
  wopts.mean_gap = mean_gap;  // hot by default: plenty of reordering
  wopts.red_fraction = red_fraction;
  wopts.red_color = red_color;
  const Workload workload = random_workload(wopts, rng);
  SimOptions sopts;
  sopts.seed = seed ^ 0x5bd1e995;
  sopts.network.jitter_mean = 3.0;  // aggressive reordering
  SimResult sim = simulate(workload, factory, n_processes, sopts);
  EXPECT_TRUE(sim.completed) << sim.error;
  std::string error;
  auto run = sim.trace.to_user_run(&error);
  EXPECT_TRUE(run.has_value()) << error;
  return {std::move(sim), std::move(*run)};
}

}  // namespace msgorder
