// Tests for inhibition attribution (ISSUE 4 tentpole): every registered
// protocol must report structured hold reasons whose per-phase segment
// durations sum *exactly* to the message's recorded send / delivery
// delay — the paper's inhibitor (Section 3.2), made measurable.
#include <gtest/gtest.h>

#include <string>

#include "src/obs/hold_soundness.hpp"
#include "src/obs/json.hpp"
#include "src/obs/observability.hpp"
#include "src/protocols/registry.hpp"
#include "src/protocols/synthesized.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/library.hpp"

namespace msgorder {
namespace {

constexpr std::size_t kProcesses = 4;
constexpr std::size_t kMessages = 120;

SimResult attributed_run(const ProtocolFactory& factory, Observability& obs,
                         std::uint64_t seed) {
  Rng rng(seed);
  WorkloadOptions wopts;
  wopts.n_processes = kProcesses;
  wopts.n_messages = kMessages;
  wopts.mean_gap = 0.3;           // hot workload: plenty of reordering
  wopts.red_fraction = 0.25;      // red messages exercise the flush family
  const Workload workload = random_workload(wopts, rng);
  SimOptions sopts;
  sopts.seed = seed ^ 0x9e3779b9;
  sopts.network.jitter_mean = 3.0;
  sopts.observability = &obs;
  return simulate(workload, factory, kProcesses, sopts);
}

/// The acceptance criterion: per message, summed per-reason hold time
/// of each phase equals that phase's recorded delay.  Boundary instants
/// are shared between consecutive segments and the engine closes the
/// last one at the exact event timestamp, so the identity is exact up
/// to floating-point summation noise.
void expect_exact_attribution(const std::string& name,
                              const ProtocolFactory& factory,
                              std::uint64_t seed) {
  SCOPED_TRACE(name);
  Observability obs;
  const SimResult result = attributed_run(factory, obs, seed);
  ASSERT_TRUE(result.completed) << result.error;
  const DelayAttribution* attr = obs.attribution();
  ASSERT_NE(attr, nullptr);
  ASSERT_EQ(attr->message_count(), kMessages);

  double total_held = 0;
  for (MessageId m = 0; m < kMessages; ++m) {
    const MessageTimes& t = result.trace.times(m);
    ASSERT_TRUE(t.complete()) << "x" << m;
    EXPECT_NEAR(attr->held_time(m, HoldPhase::kSend), t.send_delay(), 1e-9)
        << "x" << m << " send";
    EXPECT_NEAR(attr->held_time(m, HoldPhase::kDelivery),
                t.delivery_delay(), 1e-9)
        << "x" << m << " delivery";
    for (const HoldSegment& seg : attr->segments(m)) {
      EXPECT_NE(seg.reason.kind, HoldKind::kNone) << "x" << m;
      EXPECT_GE(seg.duration(), 0.0) << "x" << m;
      total_held += seg.duration();
    }
  }

  // Aggregates agree with the per-message table.
  double by_kind = 0;
  for (const SimTime t : attr->totals_by_kind()) by_kind += t;
  EXPECT_NEAR(by_kind, total_held, 1e-6);
  EXPECT_EQ(obs.instruments().hold_segments->value(),
            attr->segment_count());

  // The ISSUE-4 attribution contract, checked structurally: every hold
  // is closed, and every named blocker actually explains the hold (the
  // same oracle the exhaustive verifier applies to each explored run).
  for (const std::string& violation :
       hold_soundness_violations(result.trace, *attr)) {
    ADD_FAILURE() << violation;
  }
}

TEST(DelayAttribution, EveryRegisteredProtocolAttributesItsDelaysExactly) {
  std::uint64_t seed = 11;
  for (const RegisteredProtocol& rp : standard_protocols()) {
    expect_exact_attribution(rp.name, rp.factory, seed++);
  }
}

TEST(DelayAttribution, SynthesizedProtocolAttributesItsDelaysExactly) {
  const SynthesisResult synthesis = synthesize(causal_ordering());
  ASSERT_TRUE(synthesis.factory.has_value()) << synthesis.rationale;
  expect_exact_attribution("synthesized", *synthesis.factory, 99);
}

// Buffering protocols must produce *attributed* (non-empty) tables on an
// adversarial network; async, which never inhibits, must produce none.
TEST(DelayAttribution, BufferingProtocolsProduceSegmentsAsyncNone) {
  for (const RegisteredProtocol& rp : standard_protocols()) {
    SCOPED_TRACE(rp.name);
    Observability obs;
    const SimResult result = attributed_run(rp.factory, obs, 7);
    ASSERT_TRUE(result.completed) << result.error;
    const std::uint64_t segments = obs.attribution()->segment_count();
    if (rp.name == "async") {
      EXPECT_EQ(segments, 0u);
    } else if (rp.name == "fifo" || rp.name == "causal-rst" ||
               rp.name == "causal-ses" || rp.name == "flush" ||
               rp.name == "global-flush" || rp.name == "sync-token" ||
               rp.name == "sync-sequencer" || rp.name == "sync-locks") {
      EXPECT_GT(segments, 0u);
    }  // kweaker-1's inhibition needs deep chains; no expectation.
  }
}

// The blocking-cause detail: a fifo hold names the channel (source
// process) whose predecessor the buffered message waits for.
TEST(DelayAttribution, FifoHoldsNameTheBlockingChannel) {
  Observability obs;
  const SimResult result = attributed_run(
      standard_protocols()[1].factory, obs, 23);  // [1] == fifo
  ASSERT_TRUE(result.completed) << result.error;
  const DelayAttribution* attr = obs.attribution();
  std::size_t with_blocker = 0;
  for (MessageId m = 0; m < kMessages; ++m) {
    for (const HoldSegment& seg : attr->segments(m)) {
      EXPECT_EQ(seg.reason.kind, HoldKind::kWaitPredecessor);
      EXPECT_EQ(seg.phase, HoldPhase::kDelivery);
      if (seg.reason.blocking_proc.has_value()) {
        ++with_blocker;
        EXPECT_EQ(*seg.reason.blocking_proc, result.trace.universe()[m].src)
            << "fifo blocks on its own channel";
      }
    }
  }
  EXPECT_GT(with_blocker, 0u);
}

// When attribution is disabled, protocols skip reason computation and
// the report section is null — but metrics still flow.
TEST(DelayAttribution, DisabledAttributionLeavesNoTable) {
  Observability obs(ObservabilityOptions{.attribution = false});
  const SimResult result = attributed_run(
      standard_protocols()[1].factory, obs, 31);
  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_EQ(obs.attribution(), nullptr);
  EXPECT_EQ(obs.instruments().hold_segments->value(), 0u);
  EXPECT_GT(obs.instruments().events->value(), 0u);
}

// The run report's attribution section serializes and validates.
TEST(DelayAttribution, WriteJsonIsValid) {
  Observability obs;
  const SimResult result = attributed_run(
      standard_protocols()[2].factory, obs, 41);  // causal-rst
  ASSERT_TRUE(result.completed) << result.error;
  JsonWriter w;
  obs.attribution()->write_json(w);
  std::string error;
  ASSERT_TRUE(json_validate(w.str(), &error)) << error;
  EXPECT_NE(w.str().find("\"held_by_reason\""), std::string::npos);
  EXPECT_NE(w.str().find("\"wait_predecessor\""), std::string::npos);
}

}  // namespace
}  // namespace msgorder
