// Randomized equivalence fuzzing for the spec compiler (ISSUE 8
// satellite): random specs — compilable single-cluster chains, colored
// registry entries, disjunction/counting spec text, and degenerate
// high-arity shapes — checked for identical first-violation verdicts
// between the compiled automaton, the bitset WitnessEngine, and the
// naive backtracking scan, on random traces.  All seeds are fixed.
#include <gtest/gtest.h>

#include <iostream>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "src/checker/automaton.hpp"
#include "src/checker/monitor.hpp"
#include "src/checker/violation.hpp"
#include "src/poset/run_generator.hpp"
#include "src/spec/compile.hpp"
#include "src/spec/library.hpp"
#include "src/spec/parser.hpp"
#include "src/util/rng.hpp"

namespace msgorder {
namespace {

constexpr auto S = UserEventKind::kSend;

/// A random message population plus a causally consistent global
/// interleaving of send/deliver system events.
struct Feed {
  std::vector<Message> messages;
  std::vector<std::tuple<ProcessId, SystemEvent, double>> events;
};

Feed random_feed(Rng& rng, std::size_t n_processes, std::size_t n_messages,
                 const std::vector<int>& palette) {
  Feed feed;
  for (MessageId id = 0; id < n_messages; ++id) {
    const auto src = static_cast<ProcessId>(rng.below(n_processes));
    auto dst = static_cast<ProcessId>(rng.below(n_processes - 1));
    if (dst >= src) ++dst;
    const int color =
        palette.empty()
            ? 0
            : palette[static_cast<std::size_t>(rng.below(palette.size()))];
    feed.messages.push_back(Message{id, src, dst, color});
  }
  std::vector<MessageId> unsent, in_flight;
  for (MessageId id = 0; id < n_messages; ++id) unsent.push_back(id);
  double time = 0;
  while (!unsent.empty() || !in_flight.empty()) {
    const bool send_next =
        !unsent.empty() && (in_flight.empty() || rng.uniform01() < 0.5);
    if (send_next) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.below(unsent.size()));
      const MessageId m = unsent[pick];
      unsent.erase(unsent.begin() + static_cast<long>(pick));
      feed.events.emplace_back(feed.messages[m].src,
                               SystemEvent{m, EventKind::kSend}, time);
      in_flight.push_back(m);
    } else {
      const std::size_t pick =
          static_cast<std::size_t>(rng.below(in_flight.size()));
      const MessageId m = in_flight[pick];
      in_flight.erase(in_flight.begin() + static_cast<long>(pick));
      feed.events.emplace_back(feed.messages[m].dst,
                               SystemEvent{m, EventKind::kDeliver}, time);
    }
    time += 1.0;
  }
  return feed;
}

UserRun feed_to_run(const Feed& feed) {
  std::size_t n_processes = 0;
  for (const Message& m : feed.messages) {
    n_processes = std::max({n_processes,
                            static_cast<std::size_t>(m.src) + 1,
                            static_cast<std::size_t>(m.dst) + 1});
  }
  std::vector<std::vector<ScheduleStep>> schedules(n_processes);
  for (const auto& [process, event, time] : feed.events) {
    schedules[process].push_back(
        ScheduleStep{event.msg, to_user_kind(event.kind)});
  }
  auto run = UserRun::from_schedules(feed.messages, std::move(schedules));
  EXPECT_TRUE(run.has_value());
  return *run;
}

/// A random predicate the compiler accepts: a chain/DAG of `arity`
/// send-bound variables collocated on one process, with random color
/// demands drawn from `palette`.
ForbiddenPredicate random_compilable_predicate(
    Rng& rng, std::size_t arity, const std::vector<int>& palette) {
  ForbiddenPredicate p;
  p.arity = arity;
  // A spanning chain keeps the predicate connected and normalize-stable
  // (no redundant edges); extra random forward edges would be implied
  // by the closure and flagged/rewritten, so stick to the chain plus
  // random *skip* edges only when they are not transitively implied —
  // for a chain, every skip edge is implied, so the chain is all.
  for (std::size_t v = 0; v + 1 < arity; ++v) {
    p.conjuncts.push_back({v, S, v + 1, S});
    p.process_constraints.push_back({v, S, v + 1, S});
  }
  for (std::size_t v = 0; v < arity; ++v) {
    if (rng.uniform01() < 0.6 && !palette.empty()) {
      const int color =
          palette[static_cast<std::size_t>(rng.below(palette.size()))];
      p.color_constraints.push_back({v, color});
    }
  }
  return p;
}

TEST(AutomatonFuzz, CompilableSpecsAgreeAcrossAllThreeEngines) {
  Rng rng(20260808);
  std::size_t total_states = 0, max_states = 0, compiled_count = 0;
  int violations = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const std::size_t arity = 2 + rng.below(3);
    const std::vector<int> palette = {0, 1, 2};
    const ForbiddenPredicate spec =
        random_compilable_predicate(rng, arity, palette);
    const CompileResult compiled = compile_predicate(spec);
    ASSERT_TRUE(compiled.compiled())
        << spec.to_string() << "\n" << compiled.fallback_reason;
    ++compiled_count;
    total_states += compiled.automaton->n_states;
    max_states = std::max(max_states, compiled.automaton->n_states);

    const Feed feed = random_feed(rng, 3, 2 + rng.below(6), palette);
    const UserRun run = feed_to_run(feed);

    // Offline: fast path vs bitset vs naive.
    const auto fast = find_violation(run, spec);
    const auto naive = find_violation_naive(run, spec);
    ASSERT_EQ(fast.has_value(), naive.has_value())
        << spec.to_string() << "\n" << run.to_string();
    if (fast.has_value()) {
      ++violations;
      EXPECT_EQ(*fast, *naive) << spec.to_string();
    }

    // Online: automaton mode vs the two bitset modes.
    OnlineMonitor automaton(feed.messages, spec,
                            MonitorOptions{MonitorSearchMode::kAutomaton, 1});
    OnlineMonitor pruned(feed.messages, spec, MonitorSearchMode::kPruned);
    OnlineMonitor naive_monitor(feed.messages, spec,
                                MonitorSearchMode::kNaive);
    ASSERT_TRUE(automaton.automaton_info().compiled);
    for (const auto& [process, event, time] : feed.events) {
      automaton.on_event(process, event, time);
      pruned.on_event(process, event, time);
      naive_monitor.on_event(process, event, time);
    }
    ASSERT_EQ(automaton.violated(), pruned.violated()) << spec.to_string();
    ASSERT_EQ(pruned.violated(), naive_monitor.violated());
    if (automaton.violated()) {
      EXPECT_EQ(automaton.first_witness(), pruned.first_witness());
      EXPECT_EQ(automaton.events_to_detection(),
                pruned.events_to_detection());
    }
    EXPECT_EQ(automaton.violated(), fast.has_value());
  }
  EXPECT_GT(violations, 25);
  std::cout << "[fuzz] compiled " << compiled_count
            << " specs; mean states "
            << (total_states / compiled_count) << ", max states "
            << max_states << "\n";
}

TEST(AutomatonFuzz, RegistrySpecsAgreeOnRandomTraces) {
  Rng rng(97);
  std::size_t compiled_count = 0, fallback_count = 0;
  for (const NamedSpec& entry : spec_zoo()) {
    const CompileResult compiled = compile_predicate(entry.predicate);
    if (compiled.compiled()) {
      ++compiled_count;
    } else {
      ++fallback_count;
      ASSERT_EQ(compiled.fallback_reason.rfind("fallback: ", 0), 0u)
          << entry.name;
    }
    for (int trial = 0; trial < 10; ++trial) {
      const Feed feed = random_feed(rng, 3, 6, {0, 1, 2});
      const UserRun run = feed_to_run(feed);
      const auto fast = find_violation(run, entry.predicate);
      const auto naive = find_violation_naive(run, entry.predicate);
      ASSERT_EQ(fast.has_value(), naive.has_value())
          << entry.name << "\n" << run.to_string();
      if (fast.has_value()) EXPECT_EQ(*fast, *naive) << entry.name;

      OnlineMonitor automaton(
          feed.messages, entry.predicate,
          MonitorOptions{MonitorSearchMode::kAutomaton, 1});
      OnlineMonitor pruned(feed.messages, entry.predicate,
                           MonitorSearchMode::kPruned);
      for (const auto& [process, event, time] : feed.events) {
        automaton.on_event(process, event, time);
        pruned.on_event(process, event, time);
      }
      ASSERT_EQ(automaton.violated(), pruned.violated()) << entry.name;
      if (automaton.violated()) {
        EXPECT_EQ(automaton.first_witness(), pruned.first_witness())
            << entry.name;
      }
    }
  }
  // The acceptance criterion: every registry entry either compiles or
  // reports a structured reason; both buckets must be inhabited.
  EXPECT_GT(compiled_count, 0u);
  EXPECT_GT(fallback_count, 0u);
  std::cout << "[fuzz] registry: " << compiled_count << " compiled, "
            << fallback_count << " structured fallbacks\n";
}

TEST(AutomatonFuzz, HighArityChainsFallBackGracefully) {
  Rng rng(11);
  for (const std::size_t arity : {11u, 24u, 48u, 64u}) {
    const ForbiddenPredicate p =
        random_compilable_predicate(rng, arity, {});
    const CompileResult compiled = compile_predicate(p);
    ASSERT_FALSE(compiled.compiled()) << arity;
    EXPECT_EQ(compiled.fallback_reason.rfind("fallback: arity", 0), 0u)
        << compiled.fallback_reason;
    // The engines still handle what the compiler rejects.
    const Feed feed = random_feed(rng, 3, 5, {});
    OnlineMonitor monitor(feed.messages, p,
                          MonitorOptions{MonitorSearchMode::kAutomaton, 1});
    EXPECT_FALSE(monitor.automaton_info().compiled);
    for (const auto& [process, event, time] : feed.events) {
      monitor.on_event(process, event, time);
    }
    EXPECT_FALSE(monitor.violated());  // 5 messages cannot bind 11+ vars
  }
}

TEST(AutomatonFuzz, ParsedDisjunctionAndCountingSpecsMatchSemantics) {
  Rng rng(5150);
  const std::string text =
      "x.s |> y.s where process(x.s) = process(y.s), color(x) = 1, "
      "color(y) = 2"
      " | x.s |> y.s where process(x.s) = process(y.s), color(x) = 2, "
      "color(y) = 1;\n"
      "concurrent(color = 1) <= 2";
  const ParseSpecResult parsed = parse_spec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.spec->predicates.size(), 2u);
  ASSERT_EQ(parsed.spec->counting.size(), 1u);
  int rejected = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const Feed feed = random_feed(rng, 3, 6, {0, 1, 2});
    const UserRun run = feed_to_run(feed);
    // satisfies(composite) == no arm fires and the bound holds.
    bool expected = true;
    for (const ForbiddenPredicate& arm : parsed.spec->predicates) {
      expected = expected && !find_violation_naive(run, arm).has_value();
    }
    expected =
        expected && max_concurrency_width(run, 1) <=
                        parsed.spec->counting[0].limit;
    EXPECT_EQ(satisfies(run, *parsed.spec), expected) << run.to_string();
    if (!expected) ++rejected;
  }
  EXPECT_GT(rejected, 10);
}

}  // namespace
}  // namespace msgorder
