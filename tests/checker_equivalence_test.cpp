// ISSUE 3 equivalence suite: the word-parallel / incremental checker
// engine must be observationally identical to the seed implementations
// it replaces.  Three pairings, each driven over randomized runs:
//   * OnlineMonitor kPruned vs kNaive on the same simulated feed —
//     same verdict, same first witness, same detection event;
//   * IncrementalSyncChecker vs the batch sync_timestamps oracle;
//   * find_violation / in_causal / in_sync vs their *_naive references.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/checker/limit_sets.hpp"
#include "src/checker/monitor.hpp"
#include "src/checker/sync_incremental.hpp"
#include "src/checker/violation.hpp"
#include "src/poset/lift.hpp"
#include "src/poset/run_generator.hpp"
#include "src/protocols/async.hpp"
#include "src/protocols/fifo.hpp"
#include "src/sim/simulator.hpp"
#include "src/spec/library.hpp"

namespace msgorder {
namespace {

std::vector<ForbiddenPredicate> equivalence_specs() {
  return {causal_ordering(), fifo(), sync_crown(2), sync_crown(3),
          k_weaker_causal(1)};
}

/// Feed a complete scheduled run to an observer-style callback in one
/// linearization of its causality (events of a process stay in process
/// order, sends precede their deliveries — any topological order of the
/// closed poset qualifies).
template <typename Fn>
void feed_linearized(const UserRun& run, Fn&& fn) {
  const auto order = run.order().topological_order();
  ASSERT_TRUE(order.has_value());
  for (const std::size_t idx : *order) {
    const UserEvent e = UserRun::event_of_index(idx);
    fn(run.process_of(e), SystemEvent{e.msg, to_system_kind(e.kind)});
  }
}

TEST(MonitorEquivalence, PrunedMatchesNaiveOnSimulatedFeeds) {
  for (const ForbiddenPredicate& spec : equivalence_specs()) {
    for (const std::uint64_t seed : {1, 2, 3, 4, 5}) {
      Rng rng(seed);
      WorkloadOptions wopts;
      wopts.n_processes = 4;
      wopts.n_messages = 40;
      wopts.mean_gap = 0.3;
      wopts.red_fraction = 0.3;  // exercise color constraints
      const Workload workload = random_workload(wopts, rng);
      auto pruned = std::make_shared<OnlineMonitor>(
          workload_universe(workload), spec, MonitorSearchMode::kPruned);
      auto naive = std::make_shared<OnlineMonitor>(
          workload_universe(workload), spec, MonitorSearchMode::kNaive);
      SimOptions sopts;
      sopts.seed = seed + 100;
      sopts.network.jitter_mean = 2.0;
      sopts.observers.add(monitor_observer(pruned));
      sopts.observers.add(monitor_observer(naive));
      const SimResult result = simulate(workload, AsyncProtocol::factory(),
                                        wopts.n_processes, sopts);
      ASSERT_TRUE(result.completed) << result.error;

      EXPECT_EQ(pruned->violated(), naive->violated())
          << spec.to_string() << " seed " << seed;
      EXPECT_EQ(pruned->violation_count(), naive->violation_count());
      EXPECT_EQ(pruned->events_to_detection(),
                naive->events_to_detection());
      EXPECT_EQ(pruned->first_witness(), naive->first_witness());
    }
  }
}

TEST(MonitorEquivalence, PrunedMatchesNaiveOnScheduledRuns) {
  for (const ForbiddenPredicate& spec : equivalence_specs()) {
    for (const std::uint64_t seed : {11, 12, 13}) {
      Rng rng(seed);
      RandomRunOptions opts;
      opts.n_processes = 5;
      opts.n_messages = 24;
      opts.send_bias = 0.8;  // deep reorderings
      opts.red_fraction = 0.25;
      const UserRun run = random_scheduled_run(opts, rng);
      OnlineMonitor pruned(run.messages(), spec,
                           MonitorSearchMode::kPruned);
      OnlineMonitor naive(run.messages(), spec, MonitorSearchMode::kNaive);
      feed_linearized(run, [&](ProcessId p, SystemEvent e) {
        EXPECT_EQ(pruned.on_event(p, e, 0.0), naive.on_event(p, e, 0.0));
      });
      EXPECT_EQ(pruned.violated(), naive.violated());
      EXPECT_EQ(pruned.violation_count(), naive.violation_count());
      EXPECT_EQ(pruned.first_witness(), naive.first_witness());
      // The monitor's final verdict must also agree with the offline
      // oracle on the complete run.
      EXPECT_EQ(pruned.violated(), find_violation(run, spec).has_value());
    }
  }
}

TEST(IncrementalSync, MatchesBatchOracleOnSimulatedFeeds) {
  for (const bool fifo_protocol : {false, true}) {
    for (const std::uint64_t seed : {21, 22, 23, 24}) {
      Rng rng(seed);
      WorkloadOptions wopts;
      wopts.n_processes = 4;
      wopts.n_messages = 60;
      wopts.mean_gap = 0.4;
      const Workload workload = random_workload(wopts, rng);
      auto checker =
          std::make_shared<IncrementalSyncChecker>(wopts.n_messages);
      SimOptions sopts;
      sopts.seed = seed;
      sopts.network.jitter_mean = 1.5;
      sopts.observers.add(sync_observer(checker));
      const SimResult result = simulate(
          workload,
          fifo_protocol ? FifoProtocol::factory() : AsyncProtocol::factory(),
          wopts.n_processes, sopts);
      ASSERT_TRUE(result.completed) << result.error;
      const auto run = result.trace.to_user_run();
      ASSERT_TRUE(run.has_value());
      EXPECT_EQ(checker->in_sync(), in_sync(*run)) << "seed " << seed;
      EXPECT_EQ(checker->in_sync(),
                sync_timestamps(*run).has_value());
    }
  }
}

TEST(IncrementalSync, MatchesBatchOracleOnScheduledRuns) {
  for (const std::uint64_t seed : {31, 32, 33, 34, 35, 36}) {
    Rng rng(seed);
    RandomRunOptions opts;
    opts.n_processes = 4;
    opts.n_messages = 30;
    // Low bias keeps some runs synchronous, so both verdicts appear.
    opts.send_bias = (seed % 2 == 0) ? 0.1 : 0.9;
    const UserRun run = random_scheduled_run(opts, rng);
    IncrementalSyncChecker checker(run.message_count());
    feed_linearized(run, [&](ProcessId p, SystemEvent e) {
      checker.on_event(p, e);
    });
    EXPECT_EQ(checker.in_sync(), in_sync(run)) << "seed " << seed;
  }
}

TEST(LimitSetCheckers, WordParallelMatchesNaive) {
  for (const std::uint64_t seed : {41, 42, 43, 44, 45}) {
    Rng rng(seed);
    RandomRunOptions opts;
    opts.n_processes = 4;
    opts.n_messages = 36;
    opts.send_bias = (seed % 2 == 0) ? 0.2 : 0.8;
    const UserRun scheduled = random_scheduled_run(opts, rng);
    const UserRun abstract =
        random_abstract_run(20, /*density=*/0.15, rng);
    for (const UserRun* run : {&scheduled, &abstract}) {
      EXPECT_EQ(in_causal(*run), in_causal_naive(*run)) << seed;
      EXPECT_EQ(in_sync(*run), in_sync_naive(*run)) << seed;
    }
  }
}

TEST(OracleEquivalence, EngineFindsTheSameFirstWitnessAcrossZoo) {
  for (const std::uint64_t seed : {51, 52, 53}) {
    Rng rng(seed);
    RandomRunOptions opts;
    opts.n_processes = 5;
    opts.n_messages = 18;
    opts.send_bias = 0.8;
    opts.red_fraction = 0.3;
    const UserRun run = random_scheduled_run(opts, rng);
    for (const NamedSpec& named : spec_zoo()) {
      const auto fast = find_violation(run, named.predicate);
      const auto slow = find_violation_naive(run, named.predicate);
      EXPECT_EQ(fast, slow) << named.name << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace msgorder
