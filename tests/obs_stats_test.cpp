// Tests for the msgorder_stats analysis core (ISSUE 4): the JSON
// reader, artifact summaries, and the threshold diff that backs the CI
// bench gate.  The diff rendering is compared against golden text —
// the CLI is a thin argv wrapper over exactly these functions.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/obs/json_value.hpp"
#include "src/obs/stats.hpp"

namespace msgorder {
namespace {

TEST(JsonParse, RoundTripsScalarsContainersAndEscapes) {
  std::string error;
  const auto doc = json_parse(
      "{\"a\": [1, -2.5, 3e2], \"b\": {\"c\": true, \"d\": null}, "
      "\"s\": \"q\\\"\\\\\\n\\u0041\"}",
      &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[0].as_number(), 1);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), -2.5);
  EXPECT_DOUBLE_EQ(a->as_array()[2].as_number(), 300);
  const JsonValue* b = doc->find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->bool_at("c"), true);
  ASSERT_NE(b->find("d"), nullptr);
  EXPECT_TRUE(b->find("d")->is_null());
  EXPECT_EQ(doc->string_at("s").value_or(""), "q\"\\\nA");
}

TEST(JsonParse, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(json_parse("{\"a\":}", &error).has_value());
  EXPECT_FALSE(json_parse("[1, 2", &error).has_value());
  EXPECT_FALSE(json_parse("{\"a\":1} x", &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos);
  EXPECT_FALSE(json_parse("", &error).has_value());
  EXPECT_FALSE(json_parse("{'a':1}", &error).has_value());
}

TEST(FlattenNumeric, KeysBenchRowsBySemanticIdentity) {
  const auto doc = json_parse(
      "{\"x\": 1, \"rows\": ["
      "{\"n_messages\": 16, \"v\": 2},"
      "{\"protocol\": \"fifo\", \"v\": 3},"
      "{\"v\": 4}]}");
  ASSERT_TRUE(doc.has_value());
  std::map<std::string, double> leaves;
  flatten_numeric(*doc, "", leaves);
  EXPECT_DOUBLE_EQ(leaves.at("x"), 1);
  EXPECT_DOUBLE_EQ(leaves.at("rows[n=16].v"), 2);
  EXPECT_DOUBLE_EQ(leaves.at("rows[n=16].n_messages"), 16);
  EXPECT_DOUBLE_EQ(leaves.at("rows[fifo].v"), 3);
  EXPECT_DOUBLE_EQ(leaves.at("rows[2].v"), 4);
}

/// The golden-file test for the CI bench gate's rendering: the exact
/// text the diff produces for a 20%-threshold speedup comparison.
TEST(StatsDiff, GoldenSpeedupDiffText) {
  const auto baseline = json_parse(
      "{\"rows\": ["
      "{\"n_messages\": 16, \"direct_sync_speedup\": 10.0},"
      "{\"n_messages\": 32, \"direct_sync_speedup\": 12.0}]}");
  const auto current = json_parse(
      "{\"rows\": ["
      "{\"n_messages\": 16, \"direct_sync_speedup\": 7.0},"
      "{\"n_messages\": 32, \"direct_sync_speedup\": 12.5}]}");
  ASSERT_TRUE(baseline.has_value() && current.has_value());
  StatsDiffOptions options;
  options.fields = {"direct_sync_speedup"};
  const StatsDiff diff = stats_diff(*baseline, *current, options);
  EXPECT_EQ(diff.text,
            "diff threshold: 20%\n"
            "  REGRESSION rows[n=16].direct_sync_speedup: 10 -> 7 "
            "(-30.0%)\n"
            "  rows[n=32].direct_sync_speedup: 12 -> 12.5 (+4.2%)\n"
            "compared 2 leaves, 1 regression\n");
  EXPECT_TRUE(diff.regressed());
  ASSERT_EQ(diff.regressions.size(), 1u);
  EXPECT_NE(diff.regressions[0].find("rows[n=16]"), std::string::npos);
}

TEST(StatsDiff, DirectionIsInferredFromLeafNames) {
  const auto baseline = json_parse(
      "{\"oracle_seconds\": 1.0, \"monitor_speedup\": 4.0, "
      "\"events\": 100}");
  // seconds up 50% = regression; speedup up = fine; events (neutral)
  // change wildly = never a regression.
  const auto current = json_parse(
      "{\"oracle_seconds\": 1.5, \"monitor_speedup\": 8.0, "
      "\"events\": 900}");
  ASSERT_TRUE(baseline.has_value() && current.has_value());
  const StatsDiff diff = stats_diff(*baseline, *current, {});
  EXPECT_EQ(diff.compared, 2u);  // neutral leaf skipped without --fields
  ASSERT_EQ(diff.regressions.size(), 1u);
  EXPECT_NE(diff.regressions[0].find("oracle_seconds"), std::string::npos);
}

TEST(StatsDiff, WithinThresholdAndZeroBaselinePass) {
  const auto baseline =
      json_parse("{\"a_speedup\": 10.0, \"b_speedup\": 0.0}");
  const auto current =
      json_parse("{\"a_speedup\": 8.5, \"b_speedup\": 5.0}");
  ASSERT_TRUE(baseline.has_value() && current.has_value());
  const StatsDiff diff = stats_diff(*baseline, *current, {});
  EXPECT_FALSE(diff.regressed());  // -15% within 20%; zero base skipped
  EXPECT_NE(diff.text.find("zero baseline, skipped"), std::string::npos);
}

TEST(StatsDiff, SchemaMismatchIsFlaggedNotSilentlyPassed) {
  // A schema bump renames/adds leaves, so a cross-version diff only
  // compares what survived — callers must see the mismatch (ISSUE 8:
  // msgorder_stats --diff exits 2 on it) instead of a hollow pass.
  const auto baseline = json_parse(
      "{\"schema\": \"msgorder.bench.checker_scaling/4\","
      " \"rows\": [{\"n_messages\": 16, \"x_speedup\": 10.0}]}");
  const auto current = json_parse(
      "{\"schema\": \"msgorder.bench.checker_scaling/5\","
      " \"rows\": [{\"n_messages\": 16, \"x_speedup\": 10.0}]}");
  ASSERT_TRUE(baseline.has_value() && current.has_value());
  const StatsDiff diff = stats_diff(*baseline, *current, {});
  EXPECT_TRUE(diff.schema_mismatch());
  EXPECT_FALSE(diff.regressed());  // values agree; only the version moved
  EXPECT_EQ(diff.baseline_schema, "msgorder.bench.checker_scaling/4");
  EXPECT_EQ(diff.current_schema, "msgorder.bench.checker_scaling/5");
  EXPECT_NE(diff.text.find("schema mismatch"), std::string::npos);

  const StatsDiff same = stats_diff(*baseline, *baseline, {});
  EXPECT_FALSE(same.schema_mismatch());
  EXPECT_EQ(same.text.find("schema mismatch"), std::string::npos);
}

TEST(StatsDiff, RowsMatchByKeyNotPosition) {
  // The current report gained a new smallest size and reordered rows;
  // the n=32 row must still compare against its baseline partner.
  const auto baseline = json_parse(
      "{\"rows\": [{\"n_messages\": 32, \"x_speedup\": 10.0}]}");
  const auto current = json_parse(
      "{\"rows\": [{\"n_messages\": 8, \"x_speedup\": 1.0},"
      "{\"n_messages\": 32, \"x_speedup\": 9.5}]}");
  ASSERT_TRUE(baseline.has_value() && current.has_value());
  const StatsDiff diff = stats_diff(*baseline, *current, {});
  EXPECT_EQ(diff.compared, 1u);
  EXPECT_FALSE(diff.regressed());
}

TEST(StatsSummary, DispatchesOnSchema) {
  const auto report = json_parse(
      "{\"schema\": \"msgorder.run_report/1\", \"protocol\": \"fifo\","
      " \"n_processes\": 4, \"seed\": 9, \"completed\": true,"
      " \"error\": \"\","
      " \"messages\": {\"universe\": 10, \"invoked\": 10,"
      " \"delivered\": 10},"
      " \"latency\": {\"mean\": 2.5, \"max\": 7.0,"
      " \"percentiles\": {\"p50\": 2.0, \"p90\": 5.0, \"p99\": 6.5}},"
      " \"attribution\": {\"segments\": 3,"
      " \"held_by_reason\": {\"wait_predecessor\": 4.5, \"wait_token\": 0}}}");
  ASSERT_TRUE(report.has_value());
  const std::string summary = stats_summary(*report);
  EXPECT_NE(summary.find("protocol=fifo"), std::string::npos);
  EXPECT_NE(summary.find("completed: yes"), std::string::npos);
  EXPECT_NE(summary.find("p99=6.5"), std::string::npos);
  EXPECT_NE(summary.find("wait_predecessor: held 4.5"), std::string::npos);
  // Zero-held reasons stay out of the summary.
  EXPECT_EQ(summary.find("wait_token"), std::string::npos);

  const auto flight = json_parse(
      "{\"schema\": \"msgorder.flight_recorder/1\", \"cause\": \"boom\","
      " \"capacity\": 4, \"total_records\": 7, \"dropped\": 3,"
      " \"records\": [{\"type\": \"event\"}, {\"type\": \"hold\"},"
      " {\"type\": \"note\", \"note\": \"witness\"}]}");
  ASSERT_TRUE(flight.has_value());
  const std::string fsummary = stats_summary(*flight);
  EXPECT_NE(fsummary.find("cause=\"boom\""), std::string::npos);
  EXPECT_NE(fsummary.find("1 events, 1 holds, 1 notes"), std::string::npos);
  EXPECT_NE(fsummary.find("last note: \"witness\""), std::string::npos);

  const auto trace =
      json_parse("{\"traceEvents\": [{\"cat\": \"lifecycle\"},"
                 " {\"cat\": \"lifecycle\"}, {\"cat\": \"inhibit\"}]}");
  ASSERT_TRUE(trace.has_value());
  const std::string tsummary = stats_summary(*trace);
  EXPECT_NE(tsummary.find("3 events"), std::string::npos);
  EXPECT_NE(tsummary.find("lifecycle: 2"), std::string::npos);
}

TEST(StatsSummary, SummarizesLintArtifact) {
  const auto lint = json_parse(
      "{\"schema\": \"msgorder.lint/1\", \"clean\": false,"
      " \"inputs\": [{\"name\": \"a.spec\", \"parsed\": true,"
      " \"class\": \"tagged\", \"clean\": false,"
      " \"counts\": {\"error\": 0, \"warning\": 2, \"hint\": 0,"
      " \"note\": 1}, \"diagnostics\": []},"
      " {\"name\": \"b.spec\", \"parsed\": false, \"clean\": false,"
      " \"counts\": {\"error\": 1, \"warning\": 0, \"hint\": 0,"
      " \"note\": 0}, \"diagnostics\": []}],"
      " \"totals\": {\"inputs\": 2, \"error\": 1, \"warning\": 2,"
      " \"hint\": 0, \"note\": 1, \"by_rule\": {\"L001\": 1,"
      " \"L007\": 2}}}");
  ASSERT_TRUE(lint.has_value());
  const std::string summary = stats_summary(*lint);
  EXPECT_NE(summary.find("lint report: clean=no inputs=2"),
            std::string::npos);
  EXPECT_NE(summary.find("error=1 warning=2"), std::string::npos);
  EXPECT_NE(summary.find("L007=2"), std::string::npos);
  EXPECT_NE(summary.find("a.spec: class=tagged warning=2 note=1"),
            std::string::npos);
  EXPECT_NE(summary.find("b.spec: parse error"), std::string::npos);
}

TEST(FlattenNumeric, KeysThroughputRowsByShardCount) {
  // msgorder.bench.sim_throughput/1 rows carry no n_messages (it is a
  // top-level param); rows must key by shards so the CI diff pairs the
  // same shard count across runs even if the sweep order changes.
  const auto doc = json_parse(
      "{\"rows\": ["
      "{\"shards\": 1, \"events_per_second\": 2.0e6},"
      "{\"shards\": 4, \"events_per_second\": 7.0e6}]}");
  ASSERT_TRUE(doc.has_value());
  std::map<std::string, double> leaves;
  flatten_numeric(*doc, "", leaves);
  EXPECT_DOUBLE_EQ(leaves.at("rows[shards=1].events_per_second"), 2.0e6);
  EXPECT_DOUBLE_EQ(leaves.at("rows[shards=4].events_per_second"), 7.0e6);
}

TEST(StatsDiff, EventsPerSecondIsHigherBetterDespiteSecondsSubstring) {
  // "events_per_second" contains "seconds"; a naive substring match
  // would treat a throughput gain as a timing regression.
  const auto baseline = json_parse(
      "{\"rows\": [{\"shards\": 4, \"events_per_second\": 4.0e6,"
      " \"seconds\": 1.0}]}");
  const auto improved = json_parse(
      "{\"rows\": [{\"shards\": 4, \"events_per_second\": 8.0e6,"
      " \"seconds\": 0.5}]}");
  ASSERT_TRUE(baseline.has_value() && improved.has_value());
  const StatsDiff up = stats_diff(*baseline, *improved, {});
  EXPECT_FALSE(up.regressed());  // faster is not a regression
  const StatsDiff down = stats_diff(*improved, *baseline, {});
  EXPECT_TRUE(down.regressed());  // but slower is
  ASSERT_GE(down.regressions.size(), 1u);
  EXPECT_NE(down.regressions[0].find("events_per_second"),
            std::string::npos);
}

TEST(StatsSummary, SummarizesThroughputBenchRowsByShards) {
  const auto doc = json_parse(
      "{\"schema\": \"msgorder.bench.sim_throughput/1\", \"rows\": ["
      "{\"shards\": 1, \"seconds\": 2.0, \"events_per_second\": 2.0e6,"
      " \"speedup_vs_sequential\": 1.0},"
      "{\"shards\": 4, \"seconds\": 0.5, \"events_per_second\": 8.0e6,"
      " \"speedup_vs_sequential\": 4.0}]}");
  ASSERT_TRUE(doc.has_value());
  const std::string summary = stats_summary(*doc);
  EXPECT_NE(summary.find("schema=msgorder.bench.sim_throughput/1"),
            std::string::npos);
  EXPECT_NE(summary.find("shards=4:"), std::string::npos);
  EXPECT_NE(summary.find("speedup_vs_sequential=4"), std::string::npos);
}

TEST(StatsDiff, LintDiagnosticCountsAreLowerBetter) {
  const auto baseline = json_parse(
      "{\"schema\": \"msgorder.lint/1\","
      " \"totals\": {\"error\": 1, \"warning\": 2, \"hint\": 1}}");
  const auto current = json_parse(
      "{\"schema\": \"msgorder.lint/1\","
      " \"totals\": {\"error\": 3, \"warning\": 1, \"hint\": 1}}");
  ASSERT_TRUE(baseline.has_value() && current.has_value());
  const StatsDiff diff = stats_diff(*baseline, *current, {});
  EXPECT_TRUE(diff.regressed());
  ASSERT_EQ(diff.regressions.size(), 1u);
  EXPECT_NE(diff.regressions[0].find("totals.error"), std::string::npos);
}

// ---------------------------------------------------------------------
// ISSUE 7: artifact-declared field_meta drives the diff.

TEST(StatsDiff, FieldMetaOverridesNameHeuristic) {
  // "seconds" would be lower-better by name; the artifact declares it
  // higher-better, so the 50% drop is the regression and the 50% rise
  // in the heuristically-misleading leaf passes.
  const auto baseline = json_parse(
      "{\"field_meta\": {\"weird_seconds\": {\"direction\": \"higher\"}},"
      " \"weird_seconds\": 10.0}");
  const auto current = json_parse(
      "{\"field_meta\": {\"weird_seconds\": {\"direction\": \"higher\"}},"
      " \"weird_seconds\": 5.0}");
  ASSERT_TRUE(baseline.has_value() && current.has_value());
  const StatsDiff diff = stats_diff(*baseline, *current, {});
  EXPECT_TRUE(diff.regressed());
  ASSERT_EQ(diff.regressions.size(), 1u);
  EXPECT_NE(diff.regressions[0].find("weird_seconds"), std::string::npos);

  // Same values, declared lower-better: a drop is an improvement.
  const auto baseline2 = json_parse(
      "{\"field_meta\": {\"weird_seconds\": {\"direction\": \"lower\"}},"
      " \"weird_seconds\": 10.0}");
  const auto current2 = json_parse(
      "{\"field_meta\": {\"weird_seconds\": {\"direction\": \"lower\"}},"
      " \"weird_seconds\": 5.0}");
  ASSERT_TRUE(baseline2.has_value() && current2.has_value());
  EXPECT_FALSE(stats_diff(*baseline2, *current2, {}).regressed());
}

TEST(StatsDiff, NoiseFloorRaisesEffectiveThreshold) {
  // A 30% drop in a higher-better leaf regresses at the default 20%
  // threshold, but the artifact declares a 50% noise floor: effective
  // threshold = max(0.2, 0.5), so the wobble passes.  A 60% drop still
  // fails.
  const auto meta =
      "\"field_meta\": {\"tput\": "
      "{\"direction\": \"higher\", \"noise_floor\": 0.5}}";
  const auto baseline =
      json_parse("{" + std::string(meta) + ", \"tput\": 100.0}");
  const auto wobbly =
      json_parse("{" + std::string(meta) + ", \"tput\": 70.0}");
  const auto broken =
      json_parse("{" + std::string(meta) + ", \"tput\": 40.0}");
  ASSERT_TRUE(baseline.has_value() && wobbly.has_value() &&
              broken.has_value());
  EXPECT_FALSE(stats_diff(*baseline, *wobbly, {}).regressed());
  EXPECT_TRUE(stats_diff(*baseline, *broken, {}).regressed());
}

TEST(StatsDiff, CurrentDocumentsFieldMetaWins) {
  // Direction changed between versions: the current doc declares the
  // leaf neutral, so the old higher-better declaration cannot fail it.
  const auto baseline = json_parse(
      "{\"field_meta\": {\"v\": {\"direction\": \"higher\"}}, \"v\": 10.0}");
  const auto current = json_parse(
      "{\"field_meta\": {\"v\": {\"direction\": \"neutral\"}}, \"v\": 1.0}");
  ASSERT_TRUE(baseline.has_value() && current.has_value());
  EXPECT_FALSE(stats_diff(*baseline, *current, {}).regressed());
}

TEST(StatsDiff, FieldMetaSubtreeIsNeverDiffed) {
  // The noise_floor numbers inside field_meta are numeric leaves; they
  // must not be compared (a floor change is not a perf change).
  const auto baseline = json_parse(
      "{\"field_meta\": {\"a_speedup\": {\"noise_floor\": 0.1}},"
      " \"a_speedup\": 10.0}");
  const auto current = json_parse(
      "{\"field_meta\": {\"a_speedup\": {\"noise_floor\": 0.4}},"
      " \"a_speedup\": 10.0}");
  ASSERT_TRUE(baseline.has_value() && current.has_value());
  const StatsDiff diff = stats_diff(*baseline, *current, {});
  EXPECT_EQ(diff.compared, 1u);  // just a_speedup itself
  EXPECT_EQ(diff.text.find("field_meta"), std::string::npos);
}

TEST(StatsDiff, LeavesWithoutMetaKeepTheHeuristic) {
  // Old artifact without field_meta diffed against a new one that has
  // it for other leaves: the unlisted leaf still uses the name
  // heuristic (lower-better for *_seconds).
  const auto baseline = json_parse(
      "{\"oracle_seconds\": 1.0, \"tput\": 100.0}");
  const auto current = json_parse(
      "{\"field_meta\": {\"tput\": {\"direction\": \"higher\"}},"
      " \"oracle_seconds\": 2.0, \"tput\": 100.0}");
  ASSERT_TRUE(baseline.has_value() && current.has_value());
  const StatsDiff diff = stats_diff(*baseline, *current, {});
  EXPECT_TRUE(diff.regressed());
  ASSERT_EQ(diff.regressions.size(), 1u);
  EXPECT_NE(diff.regressions[0].find("oracle_seconds"), std::string::npos);
}

// ---------------------------------------------------------------------
// ISSUE 7 satellite: null percentiles render as missing, never as 0.

TEST(StatsSummary, NullPercentilesRenderAsNotAvailable) {
  const auto report = json_parse(
      "{\"schema\": \"msgorder.run_report/1\", \"protocol\": \"fifo\","
      " \"n_processes\": 2, \"seed\": 1, \"completed\": true,"
      " \"latency\": {\"mean\": 3.5, \"max\": 9.0,"
      "               \"percentiles\": null}}");
  ASSERT_TRUE(report.has_value());
  const std::string text = stats_summary(*report);
  EXPECT_NE(text.find("p50=n/a p90=n/a p99=n/a"), std::string::npos);
  // The old bug: a null percentile block printed as zeros.
  EXPECT_EQ(text.find("p50=0"), std::string::npos);
}

TEST(StatsSummary, PartialPercentilesMixValuesAndNotAvailable) {
  const auto report = json_parse(
      "{\"schema\": \"msgorder.run_report/1\", \"protocol\": \"fifo\","
      " \"n_processes\": 2, \"seed\": 1, \"completed\": true,"
      " \"latency\": {\"mean\": 3.5, \"max\": 9.0,"
      "   \"percentiles\": {\"p50\": 2.5, \"p90\": null, \"p99\": 8.0}}}");
  ASSERT_TRUE(report.has_value());
  const std::string text = stats_summary(*report);
  EXPECT_NE(text.find("p50=2.5 p90=n/a p99=8"), std::string::npos);
}

// ---------------------------------------------------------------------
// ISSUE 7: heatmap + profile sections of the run-report summary.

TEST(StatsSummary, RendersInhibitionHeatmapMatrix) {
  const auto report = json_parse(
      "{\"schema\": \"msgorder.run_report/1\", \"protocol\": \"fifo\","
      " \"n_processes\": 3, \"seed\": 1, \"completed\": true,"
      " \"inhibition_heatmap\": {\"cells\": ["
      "{\"blocker\": 0, \"blocked\": 1, \"kind\": \"wait_predecessor\","
      " \"segments\": 2, \"total\": 5.0, \"mean\": 2.5},"
      "{\"blocker\": null, \"blocked\": 2, \"kind\": \"wait_flush\","
      " \"segments\": 1, \"total\": 3.0, \"mean\": 3.0}],"
      " \"held_by_kind\": {\"wait_predecessor\": 5.0,"
      "                    \"wait_flush\": 3.0}}}");
  ASSERT_TRUE(report.has_value());
  const std::string text = stats_summary(*report);
  EXPECT_NE(text.find("inhibition heatmap"), std::string::npos);
  EXPECT_NE(text.find("wait_predecessor:"), std::string::npos);
  EXPECT_NE(text.find("wait_flush:"), std::string::npos);
  EXPECT_NE(text.find("P0"), std::string::npos);  // known blocker row
  EXPECT_NE(text.find("?"), std::string::npos);   // unknown-blocker row
  EXPECT_NE(text.find("5"), std::string::npos);
}

TEST(StatsSummary, RendersProfileLineWithStallSplit) {
  const auto report = json_parse(
      "{\"schema\": \"msgorder.run_report/1\", \"protocol\": \"fifo\","
      " \"n_processes\": 3, \"seed\": 1, \"completed\": true,"
      " \"profile\": {\"schema\": \"msgorder.profile/1\","
      "  \"engine\": \"sharded\", \"shards\": 4, \"windows\": 120,"
      "  \"events_total\": 9000,"
      "  \"stalls\": {\"lookahead\": 7, \"empty_heap\": 2,"
      "               \"ring_backpressure\": 1}}}");
  ASSERT_TRUE(report.has_value());
  const std::string text = stats_summary(*report);
  EXPECT_NE(text.find("profile: engine=sharded shards=4 windows=120 "
                      "events=9000 "
                      "stalls(lookahead/empty/backpressure)=7/2/1"),
            std::string::npos);
}

}  // namespace
}  // namespace msgorder
