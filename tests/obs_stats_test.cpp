// Tests for the msgorder_stats analysis core (ISSUE 4): the JSON
// reader, artifact summaries, and the threshold diff that backs the CI
// bench gate.  The diff rendering is compared against golden text —
// the CLI is a thin argv wrapper over exactly these functions.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/obs/json_value.hpp"
#include "src/obs/stats.hpp"

namespace msgorder {
namespace {

TEST(JsonParse, RoundTripsScalarsContainersAndEscapes) {
  std::string error;
  const auto doc = json_parse(
      "{\"a\": [1, -2.5, 3e2], \"b\": {\"c\": true, \"d\": null}, "
      "\"s\": \"q\\\"\\\\\\n\\u0041\"}",
      &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[0].as_number(), 1);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), -2.5);
  EXPECT_DOUBLE_EQ(a->as_array()[2].as_number(), 300);
  const JsonValue* b = doc->find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->bool_at("c"), true);
  ASSERT_NE(b->find("d"), nullptr);
  EXPECT_TRUE(b->find("d")->is_null());
  EXPECT_EQ(doc->string_at("s").value_or(""), "q\"\\\nA");
}

TEST(JsonParse, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(json_parse("{\"a\":}", &error).has_value());
  EXPECT_FALSE(json_parse("[1, 2", &error).has_value());
  EXPECT_FALSE(json_parse("{\"a\":1} x", &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos);
  EXPECT_FALSE(json_parse("", &error).has_value());
  EXPECT_FALSE(json_parse("{'a':1}", &error).has_value());
}

TEST(FlattenNumeric, KeysBenchRowsBySemanticIdentity) {
  const auto doc = json_parse(
      "{\"x\": 1, \"rows\": ["
      "{\"n_messages\": 16, \"v\": 2},"
      "{\"protocol\": \"fifo\", \"v\": 3},"
      "{\"v\": 4}]}");
  ASSERT_TRUE(doc.has_value());
  std::map<std::string, double> leaves;
  flatten_numeric(*doc, "", leaves);
  EXPECT_DOUBLE_EQ(leaves.at("x"), 1);
  EXPECT_DOUBLE_EQ(leaves.at("rows[n=16].v"), 2);
  EXPECT_DOUBLE_EQ(leaves.at("rows[n=16].n_messages"), 16);
  EXPECT_DOUBLE_EQ(leaves.at("rows[fifo].v"), 3);
  EXPECT_DOUBLE_EQ(leaves.at("rows[2].v"), 4);
}

/// The golden-file test for the CI bench gate's rendering: the exact
/// text the diff produces for a 20%-threshold speedup comparison.
TEST(StatsDiff, GoldenSpeedupDiffText) {
  const auto baseline = json_parse(
      "{\"rows\": ["
      "{\"n_messages\": 16, \"direct_sync_speedup\": 10.0},"
      "{\"n_messages\": 32, \"direct_sync_speedup\": 12.0}]}");
  const auto current = json_parse(
      "{\"rows\": ["
      "{\"n_messages\": 16, \"direct_sync_speedup\": 7.0},"
      "{\"n_messages\": 32, \"direct_sync_speedup\": 12.5}]}");
  ASSERT_TRUE(baseline.has_value() && current.has_value());
  StatsDiffOptions options;
  options.fields = {"direct_sync_speedup"};
  const StatsDiff diff = stats_diff(*baseline, *current, options);
  EXPECT_EQ(diff.text,
            "diff threshold: 20%\n"
            "  REGRESSION rows[n=16].direct_sync_speedup: 10 -> 7 "
            "(-30.0%)\n"
            "  rows[n=32].direct_sync_speedup: 12 -> 12.5 (+4.2%)\n"
            "compared 2 leaves, 1 regression\n");
  EXPECT_TRUE(diff.regressed());
  ASSERT_EQ(diff.regressions.size(), 1u);
  EXPECT_NE(diff.regressions[0].find("rows[n=16]"), std::string::npos);
}

TEST(StatsDiff, DirectionIsInferredFromLeafNames) {
  const auto baseline = json_parse(
      "{\"oracle_seconds\": 1.0, \"monitor_speedup\": 4.0, "
      "\"events\": 100}");
  // seconds up 50% = regression; speedup up = fine; events (neutral)
  // change wildly = never a regression.
  const auto current = json_parse(
      "{\"oracle_seconds\": 1.5, \"monitor_speedup\": 8.0, "
      "\"events\": 900}");
  ASSERT_TRUE(baseline.has_value() && current.has_value());
  const StatsDiff diff = stats_diff(*baseline, *current, {});
  EXPECT_EQ(diff.compared, 2u);  // neutral leaf skipped without --fields
  ASSERT_EQ(diff.regressions.size(), 1u);
  EXPECT_NE(diff.regressions[0].find("oracle_seconds"), std::string::npos);
}

TEST(StatsDiff, WithinThresholdAndZeroBaselinePass) {
  const auto baseline =
      json_parse("{\"a_speedup\": 10.0, \"b_speedup\": 0.0}");
  const auto current =
      json_parse("{\"a_speedup\": 8.5, \"b_speedup\": 5.0}");
  ASSERT_TRUE(baseline.has_value() && current.has_value());
  const StatsDiff diff = stats_diff(*baseline, *current, {});
  EXPECT_FALSE(diff.regressed());  // -15% within 20%; zero base skipped
  EXPECT_NE(diff.text.find("zero baseline, skipped"), std::string::npos);
}

TEST(StatsDiff, RowsMatchByKeyNotPosition) {
  // The current report gained a new smallest size and reordered rows;
  // the n=32 row must still compare against its baseline partner.
  const auto baseline = json_parse(
      "{\"rows\": [{\"n_messages\": 32, \"x_speedup\": 10.0}]}");
  const auto current = json_parse(
      "{\"rows\": [{\"n_messages\": 8, \"x_speedup\": 1.0},"
      "{\"n_messages\": 32, \"x_speedup\": 9.5}]}");
  ASSERT_TRUE(baseline.has_value() && current.has_value());
  const StatsDiff diff = stats_diff(*baseline, *current, {});
  EXPECT_EQ(diff.compared, 1u);
  EXPECT_FALSE(diff.regressed());
}

TEST(StatsSummary, DispatchesOnSchema) {
  const auto report = json_parse(
      "{\"schema\": \"msgorder.run_report/1\", \"protocol\": \"fifo\","
      " \"n_processes\": 4, \"seed\": 9, \"completed\": true,"
      " \"error\": \"\","
      " \"messages\": {\"universe\": 10, \"invoked\": 10,"
      " \"delivered\": 10},"
      " \"latency\": {\"mean\": 2.5, \"max\": 7.0,"
      " \"percentiles\": {\"p50\": 2.0, \"p90\": 5.0, \"p99\": 6.5}},"
      " \"attribution\": {\"segments\": 3,"
      " \"held_by_reason\": {\"wait_predecessor\": 4.5, \"wait_token\": 0}}}");
  ASSERT_TRUE(report.has_value());
  const std::string summary = stats_summary(*report);
  EXPECT_NE(summary.find("protocol=fifo"), std::string::npos);
  EXPECT_NE(summary.find("completed: yes"), std::string::npos);
  EXPECT_NE(summary.find("p99=6.5"), std::string::npos);
  EXPECT_NE(summary.find("wait_predecessor: held 4.5"), std::string::npos);
  // Zero-held reasons stay out of the summary.
  EXPECT_EQ(summary.find("wait_token"), std::string::npos);

  const auto flight = json_parse(
      "{\"schema\": \"msgorder.flight_recorder/1\", \"cause\": \"boom\","
      " \"capacity\": 4, \"total_records\": 7, \"dropped\": 3,"
      " \"records\": [{\"type\": \"event\"}, {\"type\": \"hold\"},"
      " {\"type\": \"note\", \"note\": \"witness\"}]}");
  ASSERT_TRUE(flight.has_value());
  const std::string fsummary = stats_summary(*flight);
  EXPECT_NE(fsummary.find("cause=\"boom\""), std::string::npos);
  EXPECT_NE(fsummary.find("1 events, 1 holds, 1 notes"), std::string::npos);
  EXPECT_NE(fsummary.find("last note: \"witness\""), std::string::npos);

  const auto trace =
      json_parse("{\"traceEvents\": [{\"cat\": \"lifecycle\"},"
                 " {\"cat\": \"lifecycle\"}, {\"cat\": \"inhibit\"}]}");
  ASSERT_TRUE(trace.has_value());
  const std::string tsummary = stats_summary(*trace);
  EXPECT_NE(tsummary.find("3 events"), std::string::npos);
  EXPECT_NE(tsummary.find("lifecycle: 2"), std::string::npos);
}

TEST(StatsSummary, SummarizesLintArtifact) {
  const auto lint = json_parse(
      "{\"schema\": \"msgorder.lint/1\", \"clean\": false,"
      " \"inputs\": [{\"name\": \"a.spec\", \"parsed\": true,"
      " \"class\": \"tagged\", \"clean\": false,"
      " \"counts\": {\"error\": 0, \"warning\": 2, \"hint\": 0,"
      " \"note\": 1}, \"diagnostics\": []},"
      " {\"name\": \"b.spec\", \"parsed\": false, \"clean\": false,"
      " \"counts\": {\"error\": 1, \"warning\": 0, \"hint\": 0,"
      " \"note\": 0}, \"diagnostics\": []}],"
      " \"totals\": {\"inputs\": 2, \"error\": 1, \"warning\": 2,"
      " \"hint\": 0, \"note\": 1, \"by_rule\": {\"L001\": 1,"
      " \"L007\": 2}}}");
  ASSERT_TRUE(lint.has_value());
  const std::string summary = stats_summary(*lint);
  EXPECT_NE(summary.find("lint report: clean=no inputs=2"),
            std::string::npos);
  EXPECT_NE(summary.find("error=1 warning=2"), std::string::npos);
  EXPECT_NE(summary.find("L007=2"), std::string::npos);
  EXPECT_NE(summary.find("a.spec: class=tagged warning=2 note=1"),
            std::string::npos);
  EXPECT_NE(summary.find("b.spec: parse error"), std::string::npos);
}

TEST(FlattenNumeric, KeysThroughputRowsByShardCount) {
  // msgorder.bench.sim_throughput/1 rows carry no n_messages (it is a
  // top-level param); rows must key by shards so the CI diff pairs the
  // same shard count across runs even if the sweep order changes.
  const auto doc = json_parse(
      "{\"rows\": ["
      "{\"shards\": 1, \"events_per_second\": 2.0e6},"
      "{\"shards\": 4, \"events_per_second\": 7.0e6}]}");
  ASSERT_TRUE(doc.has_value());
  std::map<std::string, double> leaves;
  flatten_numeric(*doc, "", leaves);
  EXPECT_DOUBLE_EQ(leaves.at("rows[shards=1].events_per_second"), 2.0e6);
  EXPECT_DOUBLE_EQ(leaves.at("rows[shards=4].events_per_second"), 7.0e6);
}

TEST(StatsDiff, EventsPerSecondIsHigherBetterDespiteSecondsSubstring) {
  // "events_per_second" contains "seconds"; a naive substring match
  // would treat a throughput gain as a timing regression.
  const auto baseline = json_parse(
      "{\"rows\": [{\"shards\": 4, \"events_per_second\": 4.0e6,"
      " \"seconds\": 1.0}]}");
  const auto improved = json_parse(
      "{\"rows\": [{\"shards\": 4, \"events_per_second\": 8.0e6,"
      " \"seconds\": 0.5}]}");
  ASSERT_TRUE(baseline.has_value() && improved.has_value());
  const StatsDiff up = stats_diff(*baseline, *improved, {});
  EXPECT_FALSE(up.regressed());  // faster is not a regression
  const StatsDiff down = stats_diff(*improved, *baseline, {});
  EXPECT_TRUE(down.regressed());  // but slower is
  ASSERT_GE(down.regressions.size(), 1u);
  EXPECT_NE(down.regressions[0].find("events_per_second"),
            std::string::npos);
}

TEST(StatsSummary, SummarizesThroughputBenchRowsByShards) {
  const auto doc = json_parse(
      "{\"schema\": \"msgorder.bench.sim_throughput/1\", \"rows\": ["
      "{\"shards\": 1, \"seconds\": 2.0, \"events_per_second\": 2.0e6,"
      " \"speedup_vs_sequential\": 1.0},"
      "{\"shards\": 4, \"seconds\": 0.5, \"events_per_second\": 8.0e6,"
      " \"speedup_vs_sequential\": 4.0}]}");
  ASSERT_TRUE(doc.has_value());
  const std::string summary = stats_summary(*doc);
  EXPECT_NE(summary.find("schema=msgorder.bench.sim_throughput/1"),
            std::string::npos);
  EXPECT_NE(summary.find("shards=4:"), std::string::npos);
  EXPECT_NE(summary.find("speedup_vs_sequential=4"), std::string::npos);
}

TEST(StatsDiff, LintDiagnosticCountsAreLowerBetter) {
  const auto baseline = json_parse(
      "{\"schema\": \"msgorder.lint/1\","
      " \"totals\": {\"error\": 1, \"warning\": 2, \"hint\": 1}}");
  const auto current = json_parse(
      "{\"schema\": \"msgorder.lint/1\","
      " \"totals\": {\"error\": 3, \"warning\": 1, \"hint\": 1}}");
  ASSERT_TRUE(baseline.has_value() && current.has_value());
  const StatsDiff diff = stats_diff(*baseline, *current, {});
  EXPECT_TRUE(diff.regressed());
  ASSERT_EQ(diff.regressions.size(), 1u);
  EXPECT_NE(diff.regressions[0].find("totals.error"), std::string::npos);
}

}  // namespace
}  // namespace msgorder
