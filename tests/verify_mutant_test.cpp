// Seeded-mutant tests (ISSUE 10): the verifier must catch real bugs.
// Each mutant is a registry protocol with one realistic defect seeded
// in (an impatient resequencer, an off-by-one that strands a message, a
// missing transitive merge, a token released before the ack), and the
// exhaustive exploration must (a) flag it with the expected
// counterexample class and (b) produce a schedule that replays into a
// loadable msgorder.tracelog/1 log for the causal query tooling.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/obs/tracelog.hpp"
#include "src/verify/mutants.hpp"
#include "src/verify/report.hpp"
#include "src/verify/scenario.hpp"
#include "src/verify/verifier.hpp"

namespace msgorder {
namespace {

constexpr std::size_t kProcs = 3;
constexpr std::size_t kMsgs = 4;

TEST(VerifyMutants, EveryMutantIsFlaggedWithItsExpectedVerdict) {
  const auto scenarios = standard_scenarios(kProcs, kMsgs);
  VerifyOptions options;
  for (const MutantProtocol& mutant : mutant_protocols()) {
    const StackReport report = verify_stack(
        mutant.name, mutant.factory, mutant.spec, scenarios, options);
    EXPECT_EQ(report.verdict, mutant.expected_verdict) << mutant.name;
    EXPECT_FALSE(report.ok()) << mutant.name;
    bool found = false;
    for (const ScenarioResult& s : report.scenarios) {
      if (!s.counterexample.has_value()) continue;
      found = true;
      EXPECT_EQ(s.counterexample->property, mutant.expected_verdict)
          << mutant.name;
      EXPECT_FALSE(s.counterexample->schedule.empty()) << mutant.name;
      EXPECT_FALSE(s.counterexample->detail.empty()) << mutant.name;
    }
    EXPECT_TRUE(found) << mutant.name << " reported no counterexample";
  }
}

TEST(VerifyMutants, MutantsAreAlsoCaughtUnderFifoOrReportCleanly) {
  // Under FIFO channels the fifo mutants have nothing to reorder, so
  // they legitimately verify; the causal mutant's relay chain crosses
  // even on FIFO channels only via multi-hop timing, which FIFO
  // delivery can still produce.  What must NEVER happen is a crash or
  // a bogus verdict string.
  const auto scenarios = standard_scenarios(kProcs, kMsgs);
  VerifyOptions options;
  options.channel_model = ChannelModel::kFifo;
  for (const MutantProtocol& mutant : mutant_protocols()) {
    const StackReport report = verify_stack(
        mutant.name, mutant.factory, mutant.spec, scenarios, options);
    for (const ScenarioResult& s : report.scenarios) {
      EXPECT_TRUE(s.verdict == "verified" || s.verdict == "violation" ||
                  s.verdict == "deadlock" || s.verdict == "hold-unsound" ||
                  s.verdict == "control-leak" || s.verdict == "bounded" ||
                  s.verdict == "no-completion")
          << mutant.name << " / " << s.scenario << ": " << s.verdict;
    }
  }
}

TEST(VerifyMutants, CounterexamplesReplayIntoLoadableTracelogs) {
  const auto scenarios = standard_scenarios(kProcs, kMsgs);
  VerifyOptions options;
  std::size_t index = 0;
  for (const MutantProtocol& mutant : mutant_protocols()) {
    SCOPED_TRACE(mutant.name);
    const StackReport report = verify_stack(
        mutant.name, mutant.factory, mutant.spec, scenarios, options);
    const ScenarioResult* failing = nullptr;
    for (const ScenarioResult& s : report.scenarios) {
      if (s.counterexample.has_value()) failing = &s;
    }
    ASSERT_NE(failing, nullptr);
    const Scenario* scenario = nullptr;
    for (const Scenario& cand : scenarios) {
      if (cand.name == failing->scenario) scenario = &cand;
    }
    ASSERT_NE(scenario, nullptr);

    const std::string path =
        testing::TempDir() + "verify_ce_" + std::to_string(index++) +
        ".log";
    std::string error;
    ASSERT_TRUE(replay_counterexample(*scenario, mutant.factory,
                                      mutant.name, options,
                                      *failing->counterexample, path,
                                      &error))
        << error;

    const auto log = load_tracelog(path, &error);
    ASSERT_TRUE(log.has_value()) << error;
    EXPECT_EQ(log->header.schema, "msgorder.tracelog/1");
    EXPECT_EQ(log->header.engine, "verifier");
    EXPECT_EQ(log->header.protocol, mutant.name);
    EXPECT_GE(log->events.size(), failing->counterexample->schedule.size());
    // The final record is the note naming the violated property.
    ASSERT_FALSE(log->records.empty());
    const TraceLogRecord& last = log->records.back();
    EXPECT_EQ(last.type, TraceLogRecord::Type::kNote);
    EXPECT_NE(last.note.find("counterexample"), std::string::npos);
    EXPECT_NE(last.note.find(failing->counterexample->property),
              std::string::npos);
    std::remove(path.c_str());
  }
}

TEST(VerifyMutants, DeadlockCounterexampleNamesTheStrandedMessage) {
  const auto scenarios = standard_scenarios(kProcs, kMsgs);
  VerifyOptions options;
  for (const MutantProtocol& mutant : mutant_protocols()) {
    if (mutant.expected_verdict != "deadlock") continue;
    const StackReport report = verify_stack(
        mutant.name, mutant.factory, mutant.spec, scenarios, options);
    ASSERT_EQ(report.verdict, "deadlock") << mutant.name;
    for (const ScenarioResult& s : report.scenarios) {
      if (!s.counterexample.has_value()) continue;
      EXPECT_NE(s.detail.find("undelivered"), std::string::npos)
          << mutant.name;
    }
  }
}

}  // namespace
}  // namespace msgorder
