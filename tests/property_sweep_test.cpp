// Parameterized property sweeps tying the layers together:
//   * per zoo spec: classifier / witness / weakening / synthesis
//     coherence, and conjunct-removal monotonicity of the oracle;
//   * per protocol x load: liveness and trace validity on hostile
//     networks.
#include <gtest/gtest.h>

#include "src/checker/limit_sets.hpp"
#include "src/checker/violation.hpp"
#include "src/poset/run_generator.hpp"
#include "src/protocols/registry.hpp"
#include "src/protocols/synthesized.hpp"
#include "src/spec/library.hpp"
#include "src/spec/weaken.hpp"
#include "src/spec/witness.hpp"
#include "tests/sim_harness.hpp"

namespace msgorder {
namespace {

// ---------------------------------------------------------------------
// Sweep 1: every zoo specification.

class ZooSpecTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  const NamedSpec& spec() const {
    static const auto zoo = spec_zoo();
    return zoo[GetParam()];
  }
};

TEST_P(ZooSpecTest, ClassificationIsStable) {
  // classify is a pure function: same verdict twice, and the verdict of
  // the normalized predicate matches.
  const Classification a = classify(spec().predicate);
  const Classification b = classify(spec().predicate);
  EXPECT_EQ(a.protocol_class, b.protocol_class);
  EXPECT_EQ(a.min_order, b.min_order);
  if (a.normalized.triviality == NormalTriviality::kNone) {
    EXPECT_EQ(classify(a.normalized.predicate).protocol_class,
              a.protocol_class);
  }
}

TEST_P(ZooSpecTest, RemovingAConjunctStrengthensTheSpec) {
  // Dropping a conjunct makes the forbidden pattern easier to satisfy:
  // every run violating B also violates B-minus-one-conjunct.
  const ForbiddenPredicate& full = spec().predicate;
  if (full.conjuncts.size() < 2) return;
  Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    RandomRunOptions opts;
    opts.n_processes = 3;
    opts.n_messages = 6;
    opts.send_bias = 0.8;
    opts.red_fraction = 0.4;
    const UserRun run = random_scheduled_run(opts, rng);
    if (satisfies(run, full)) continue;
    for (std::size_t drop = 0; drop < full.conjuncts.size(); ++drop) {
      ForbiddenPredicate weaker = full;
      weaker.conjuncts.erase(weaker.conjuncts.begin() +
                             static_cast<long>(drop));
      EXPECT_FALSE(satisfies(run, weaker))
          << spec().name << " minus conjunct " << drop;
    }
  }
}

TEST_P(ZooSpecTest, WitnessMatchesClass) {
  const Classification verdict = classify(spec().predicate);
  const auto witness = witness_run(spec().predicate);
  if (verdict.protocol_class == ProtocolClass::kTagless) {
    EXPECT_FALSE(witness.has_value());
    return;
  }
  ASSERT_TRUE(witness.has_value());
  EXPECT_FALSE(satisfies(*witness, spec().predicate));
}

TEST_P(ZooSpecTest, WeakeningPreservesOrder) {
  const Classification verdict = classify(spec().predicate);
  if (!verdict.witness.has_value() || verdict.witness->edges.empty()) {
    return;
  }
  const PredicateGraph graph(verdict.normalized.predicate);
  const ForbiddenPredicate ring =
      cycle_predicate(graph, verdict.witness->edges);
  const WeakeningTrace trace = weaken_to_canonical(ring);
  for (const ForbiddenPredicate& step : trace.steps) {
    const Classification c = classify(step);
    ASSERT_TRUE(c.min_order.has_value());
    EXPECT_EQ(*c.min_order, *verdict.min_order) << spec().name;
  }
}

TEST_P(ZooSpecTest, SynthesisAgreesWithClassification) {
  const SynthesisResult synthesis = synthesize(spec().predicate);
  EXPECT_EQ(synthesis.classification.protocol_class, spec().expected);
  EXPECT_EQ(synthesis.factory.has_value(),
            spec().expected != ProtocolClass::kNotImplementable);
}

std::vector<std::size_t> zoo_indices() {
  std::vector<std::size_t> indices(spec_zoo().size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  return indices;
}

INSTANTIATE_TEST_SUITE_P(AllZooSpecs, ZooSpecTest,
                         ::testing::ValuesIn(zoo_indices()),
                         [](const auto& info) {
                           return "spec" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Sweep 2: every registered protocol under three load regimes.

struct LoadCase {
  std::size_t protocol_index;
  double mean_gap;
};

class ProtocolLoadTest : public ::testing::TestWithParam<LoadCase> {};

TEST_P(ProtocolLoadTest, LivenessAndTraceValidity) {
  const auto protocols = standard_protocols();
  const RegisteredProtocol& rp = protocols[GetParam().protocol_index];
  const auto result =
      run_protocol(rp.factory, 4, 80, /*seed=*/77, /*red_fraction=*/0.2,
                   /*red_color=*/1, GetParam().mean_gap);
  EXPECT_TRUE(result.sim.trace.all_delivered()) << rp.name;
  const auto system = result.sim.trace.to_system_run();
  ASSERT_TRUE(system.has_value()) << rp.name;
  EXPECT_TRUE(system->quiescent());
  // Invoke order equals message id order in random workloads; every
  // protocol preserves per-message lifecycle ordering by construction
  // of the trace (validated inside from_sequences).
}

std::vector<LoadCase> load_cases() {
  std::vector<LoadCase> cases;
  const std::size_t n = standard_protocols().size();
  for (std::size_t i = 0; i < n; ++i) {
    for (double gap : {0.05, 0.5, 5.0}) {
      cases.push_back({i, gap});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAllLoads, ProtocolLoadTest,
    ::testing::ValuesIn(load_cases()), [](const auto& info) {
      const auto protocols = standard_protocols();
      std::string name = protocols[info.param.protocol_index].name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_gap" +
             std::to_string(static_cast<int>(info.param.mean_gap * 100));
    });

// ---------------------------------------------------------------------
// Sweep 3: run-size scaling of checker agreement.

class CheckerAgreementTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CheckerAgreementTest, OracleMatchesDirectCheckers) {
  Rng rng(42 + GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    RandomRunOptions opts;
    opts.n_processes = 4;
    opts.n_messages = GetParam();
    opts.send_bias = 0.7;
    const UserRun run = random_scheduled_run(opts, rng);
    EXPECT_EQ(satisfies(run, causal_ordering()), in_causal(run));
    if (in_sync(run)) {
      EXPECT_TRUE(satisfies(run, sync_crown(2)));
      EXPECT_TRUE(satisfies(run, sync_crown(3)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RunSizes, CheckerAgreementTest,
                         ::testing::Values(2, 4, 8, 16, 32),
                         [](const auto& info) {
                           return "m" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace msgorder
