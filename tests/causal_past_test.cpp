// Figure 1: the causal past of a run with respect to a process.
#include <gtest/gtest.h>

#include "src/poset/system_run.hpp"

namespace msgorder {
namespace {

SystemEvent ev(MessageId m, EventKind k) { return {m, k}; }

// Three processes; message 0: P0 -> P1 delivered, message 1: P2 -> P1
// sent but not received, message 2: P0 -> P2 delivered.
std::optional<SystemRun> sample_run() {
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 2, 1, 0}, {2, 0, 2, 0}};
  return SystemRun::from_sequences(
      ms,
      {
          {ev(0, EventKind::kInvoke), ev(0, EventKind::kSend),
           ev(2, EventKind::kInvoke), ev(2, EventKind::kSend)},
          {ev(0, EventKind::kReceive), ev(0, EventKind::kDeliver)},
          {ev(1, EventKind::kInvoke), ev(1, EventKind::kSend),
           ev(2, EventKind::kReceive), ev(2, EventKind::kDeliver)},
      });
}

TEST(CausalPast, KeepsOwnHistoryEntirely) {
  const auto run = sample_run();
  ASSERT_TRUE(run.has_value());
  for (ProcessId i = 0; i < 3; ++i) {
    const SystemRun past = run->causal_past(i);
    EXPECT_EQ(past.sequences()[i], run->sequences()[i]) << "process " << i;
  }
}

TEST(CausalPast, KeepsOnlyEventsThatReachTheProcess) {
  const auto run = sample_run();
  ASSERT_TRUE(run.has_value());
  const SystemRun past = run->causal_past(1);
  // P1 saw message 0: its invoke+send at P0 are in the past.
  EXPECT_TRUE(past.present(0, EventKind::kInvoke));
  EXPECT_TRUE(past.present(0, EventKind::kSend));
  // Message 2's send at P0 came after message 0's send and never reached
  // P1: not in the past.
  EXPECT_FALSE(past.present(2, EventKind::kInvoke));
  // Message 1 was sent to P1 but never received: not in the past.
  EXPECT_FALSE(past.present(1, EventKind::kSend));
  EXPECT_TRUE(past.sequences()[2].empty());
}

TEST(CausalPast, IsAPrefixPerProcess) {
  const auto run = sample_run();
  ASSERT_TRUE(run.has_value());
  for (ProcessId i = 0; i < 3; ++i) {
    const SystemRun past = run->causal_past(i);
    for (ProcessId j = 0; j < 3; ++j) {
      const auto& full = run->sequences()[j];
      const auto& cut = past.sequences()[j];
      ASSERT_LE(cut.size(), full.size());
      for (std::size_t k = 0; k < cut.size(); ++k) {
        EXPECT_EQ(cut[k], full[k]);
      }
    }
  }
}

TEST(CausalPast, EmptyRunHasEmptyPast) {
  SystemRun run({{0, 0, 1, 0}}, 2);
  const SystemRun past = run.causal_past(1);
  EXPECT_EQ(past.event_count(), 0u);
}

TEST(CausalPast, TransitiveThroughIntermediateProcess) {
  // P0 sends m0 to P1; P1 then sends m1 to P2.  P2's causal past must
  // include P0's send of m0 (it reaches P2 via P1).
  std::vector<Message> ms = {{0, 0, 1, 0}, {1, 1, 2, 0}};
  const auto run = SystemRun::from_sequences(
      ms,
      {
          {ev(0, EventKind::kInvoke), ev(0, EventKind::kSend)},
          {ev(0, EventKind::kReceive), ev(0, EventKind::kDeliver),
           ev(1, EventKind::kInvoke), ev(1, EventKind::kSend)},
          {ev(1, EventKind::kReceive), ev(1, EventKind::kDeliver)},
      });
  ASSERT_TRUE(run.has_value());
  const SystemRun past = run->causal_past(2);
  EXPECT_TRUE(past.present(0, EventKind::kSend));
  EXPECT_TRUE(past.present(0, EventKind::kReceive));
  EXPECT_TRUE(past.present(1, EventKind::kSend));
}

TEST(CausalPast, IdempotentForOwnProcess) {
  const auto run = sample_run();
  ASSERT_TRUE(run.has_value());
  const SystemRun once = run->causal_past(1);
  const SystemRun twice = once.causal_past(1);
  EXPECT_EQ(once.key(), twice.key());
}

}  // namespace
}  // namespace msgorder
