// An exhaustive census of small forbidden predicates: every 2-variable
// predicate with 1..3 conjuncts is classified, and the verdict is
// cross-validated against semantic ground truth:
//
//   * Theorem 1 containments checked empirically: if the classifier says
//     "tagged", every causally ordered run (enumerated and random,
//     scheduled and abstract) must satisfy the spec; if it says
//     "tagless", every run must; if "general", every logically
//     synchronous run must.
//   * Conversely, non-implementable specs must be violated by some
//     logically synchronous run (Theorem 2's construction).
//
// This sweeps 16 + 16*16 + ... predicate shapes through both the
// algebraic and the semantic layer at once.
#include <gtest/gtest.h>

#include <vector>

#include "src/checker/limit_sets.hpp"
#include "src/checker/violation.hpp"
#include "src/poset/run_generator.hpp"
#include "src/spec/classify.hpp"
#include "src/spec/graph.hpp"
#include "src/spec/witness.hpp"

namespace msgorder {
namespace {

constexpr UserEventKind kKinds[] = {UserEventKind::kSend,
                                    UserEventKind::kDeliver};

/// All 8 directed labelled edges over variables {0, 1} (self-loops
/// excluded; normalization covers those separately): 2 directions x 4
/// label combinations.
std::vector<Conjunct> all_edges() {
  std::vector<Conjunct> edges;
  for (std::size_t from = 0; from < 2; ++from) {
    for (std::size_t to = 0; to < 2; ++to) {
      if (from == to) continue;
      for (UserEventKind p : kKinds) {
        for (UserEventKind q : kKinds) {
          edges.push_back({from, p, to, q});
        }
      }
    }
  }
  return edges;
}

struct Corpus {
  /// Everything, including abstract (non-realizable) posets — valid for
  /// the tagless check because unsatisfiable predicates are
  /// unsatisfiable in *any* partial order.
  std::vector<UserRun> all;
  /// Realizable (scheduled) runs only: the paper's ground set X is the
  /// message-realizable runs — the Lemma 3 equivalences (e.g. B1 <=> B2)
  /// rely on cross-process causality being mediated by actual messages,
  /// so the causal/sync sub-corpora must be realizable.
  std::vector<UserRun> causal;
  std::vector<UserRun> sync;
};

const Corpus& corpus() {
  static const Corpus c = [] {
    Corpus corpus;
    std::vector<UserRun> scheduled;
    // Exhaustive small scheduled runs over three shapes.
    for (const std::vector<Message>& universe :
         {std::vector<Message>{{0, 0, 1, 0}, {1, 0, 1, 0}},
          std::vector<Message>{{0, 0, 1, 0}, {1, 1, 0, 0}},
          std::vector<Message>{{0, 0, 1, 0}, {1, 1, 2, 0}, {2, 2, 0, 0}}}) {
      for (UserRun& run : enumerate_scheduled_runs(universe)) {
        scheduled.push_back(std::move(run));
      }
    }
    // Random scheduled and abstract runs for breadth.
    Rng rng(271828);
    for (int trial = 0; trial < 150; ++trial) {
      RandomRunOptions opts;
      opts.n_processes = 2 + rng.below(3);
      opts.n_messages = 2 + rng.below(5);
      opts.send_bias = rng.uniform01();
      scheduled.push_back(random_scheduled_run(opts, rng));
      corpus.all.push_back(
          random_abstract_run(2 + rng.below(4), rng.uniform01(), rng));
    }
    for (const UserRun& run : scheduled) {
      if (in_causal(run)) corpus.causal.push_back(run);
      if (in_sync(run)) corpus.sync.push_back(run);
      corpus.all.push_back(run);
    }
    return corpus;
  }();
  return c;
}

bool all_satisfy(const std::vector<UserRun>& runs,
                 const ForbiddenPredicate& predicate) {
  for (const UserRun& run : runs) {
    if (!satisfies(run, predicate)) return false;
  }
  return true;
}

void check_against_semantics(const ForbiddenPredicate& predicate) {
  const Classification verdict = classify(predicate);
  const Corpus& c = corpus();
  switch (verdict.protocol_class) {
    case ProtocolClass::kTagless:
      EXPECT_TRUE(all_satisfy(c.all, predicate))
          << "tagless spec violated by a run: " << predicate.to_string();
      break;
    case ProtocolClass::kTagged:
      EXPECT_TRUE(all_satisfy(c.causal, predicate))
          << "tagged spec violated by a causal run: "
          << predicate.to_string();
      break;
    case ProtocolClass::kGeneral: {
      EXPECT_TRUE(all_satisfy(c.sync, predicate))
          << "spec violated by a sync run: " << predicate.to_string();
      // And it must NOT contain X_co: the Theorem-4 witness is a causal
      // run violating the spec.
      const auto witness = witness_run(predicate);
      ASSERT_TRUE(witness.has_value()) << predicate.to_string();
      EXPECT_TRUE(in_causal(*witness)) << predicate.to_string();
      EXPECT_FALSE(satisfies(*witness, predicate))
          << predicate.to_string();
      break;
    }
    case ProtocolClass::kNotImplementable: {
      // Theorem 2: the witness is a logically synchronous run violating
      // the spec, so no protocol can enforce it.
      const auto witness = witness_run(predicate);
      ASSERT_TRUE(witness.has_value()) << predicate.to_string();
      EXPECT_TRUE(in_sync(*witness)) << predicate.to_string();
      EXPECT_FALSE(satisfies(*witness, predicate))
          << predicate.to_string();
      break;
    }
  }
}

TEST(Census, SingleConjunctPredicates) {
  for (const Conjunct& e : all_edges()) {
    check_against_semantics(make_predicate(2, {e}));
  }
}

TEST(Census, TwoConjunctPredicates) {
  const auto edges = all_edges();
  for (const Conjunct& a : edges) {
    for (const Conjunct& b : edges) {
      if (a == b) continue;
      check_against_semantics(make_predicate(2, {a, b}));
    }
  }
}

TEST(Census, TwoConjunctClassDistribution) {
  // Count the verdicts across the full 2-conjunct census and pin the
  // distribution (a regression oracle for the classifier).
  const auto edges = all_edges();
  std::map<ProtocolClass, int> histogram;
  for (const Conjunct& a : edges) {
    for (const Conjunct& b : edges) {
      if (a == b) continue;
      ++histogram[classify(make_predicate(2, {a, b})).protocol_class];
    }
  }
  int total = 0;
  for (const auto& [cls, count] : histogram) total += count;
  // 8 edges, ordered distinct pairs: 8*7 = 56.
  EXPECT_EQ(total, 56);
  // Opposite-direction ordered pairs (4*4*2 = 32) form 2-cycles; the
  // 24 same-direction pairs are acyclic.
  const int cyclic = histogram[ProtocolClass::kTagless] +
                     histogram[ProtocolClass::kTagged] +
                     histogram[ProtocolClass::kGeneral];
  EXPECT_EQ(cyclic, 32);
  EXPECT_EQ(histogram[ProtocolClass::kNotImplementable], 24);
  // Of the 16 label combinations of a 2-cycle: beta at a junction needs
  // in=r and out=s, so 9 have no beta, 6 exactly one, 1 both (the
  // 2-crown); ordered pairs double each count.
  EXPECT_EQ(histogram[ProtocolClass::kTagless], 9 * 2);
  EXPECT_EQ(histogram[ProtocolClass::kTagged], 6 * 2);
  EXPECT_EQ(histogram[ProtocolClass::kGeneral], 1 * 2);
}

TEST(Census, ThreeConjunctSpotChecks) {
  // The full 3-conjunct census is ~3k predicates; sample deterministic
  // subsets to keep runtime bounded while sweeping diverse shapes.
  const auto edges = all_edges();
  Rng rng(314159);
  for (int trial = 0; trial < 250; ++trial) {
    const Conjunct a = edges[rng.below(edges.size())];
    const Conjunct b = edges[rng.below(edges.size())];
    const Conjunct c = edges[rng.below(edges.size())];
    check_against_semantics(make_predicate(2, {a, b, c}));
  }
}

TEST(Census, ThreeVariableRandomPredicates) {
  Rng rng(161803);
  for (int trial = 0; trial < 150; ++trial) {
    std::vector<Conjunct> conjuncts;
    const std::size_t n_conjuncts = 2 + rng.below(3);
    for (std::size_t i = 0; i < n_conjuncts; ++i) {
      Conjunct c;
      c.lhs = rng.below(3);
      c.rhs = rng.below(3);
      if (c.lhs == c.rhs) c.rhs = (c.rhs + 1) % 3;
      c.p = kKinds[rng.below(2)];
      c.q = kKinds[rng.below(2)];
      conjuncts.push_back(c);
    }
    check_against_semantics(make_predicate(3, conjuncts));
  }
}

}  // namespace
}  // namespace msgorder
