#include <gtest/gtest.h>

#include "src/poset/diagram.hpp"
#include "src/poset/lift.hpp"
#include "src/poset/run_generator.hpp"
#include "src/spec/parser.hpp"

namespace msgorder {
namespace {

constexpr UserEventKind S = UserEventKind::kSend;
constexpr UserEventKind R = UserEventKind::kDeliver;

TEST(Diagram, UserRunBasicShape) {
  std::vector<Message> ms = {{0, 0, 1, 0}};
  const auto run = UserRun::from_schedules(ms, {{{0, S}}, {{0, R}}});
  ASSERT_TRUE(run.has_value());
  const std::string text = time_diagram(*run);
  // Two lines, send on P0's line before the delivery on P1's.
  EXPECT_NE(text.find("P0: |s0"), std::string::npos) << text;
  EXPECT_NE(text.find("P1: |"), std::string::npos);
  EXPECT_LT(text.find("s0"), text.find("r0"));
}

TEST(Diagram, SystemRunShowsAllFourKinds) {
  std::vector<Message> ms = {{0, 0, 1, 0}};
  const auto run = UserRun::from_schedules(ms, {{{0, S}}, {{0, R}}});
  ASSERT_TRUE(run.has_value());
  const std::string text = time_diagram(lift(*run));
  EXPECT_NE(text.find("s*0"), std::string::npos) << text;
  EXPECT_NE(text.find("s0"), std::string::npos);
  EXPECT_NE(text.find("r*0"), std::string::npos);
  EXPECT_NE(text.find("r0"), std::string::npos);
}

TEST(Diagram, EveryEventAppearsExactlyOnce) {
  Rng rng(5);
  RandomRunOptions opts;
  opts.n_processes = 3;
  opts.n_messages = 6;
  const UserRun run = random_scheduled_run(opts, rng);
  const std::string text = time_diagram(run);
  for (MessageId m = 0; m < run.message_count(); ++m) {
    for (const char* kind : {"s", "r"}) {
      const std::string label = kind + std::to_string(m);
      std::size_t count = 0;
      for (std::size_t pos = text.find(label); pos != std::string::npos;
           pos = text.find(label, pos + 1)) {
        // Avoid counting "s1" inside "s12" or "r*1": require the label
        // to be followed by a non-digit and preceded by '|'.
        const bool clean_left = pos > 0 && text[pos - 1] == '|';
        const std::size_t end = pos + label.size();
        const bool clean_right =
            end >= text.size() || !std::isdigit(static_cast<unsigned char>(
                                      text[end]));
        if (clean_left && clean_right) ++count;
      }
      EXPECT_EQ(count, 1u) << label << "\n" << text;
    }
  }
}

TEST(Diagram, LinearizationRespectsCausality) {
  // The column of a send is always left of its delivery's column.
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    RandomRunOptions opts;
    opts.n_processes = 3;
    opts.n_messages = 5;
    const UserRun run = random_scheduled_run(opts, rng);
    const std::string text = time_diagram(run);
    // First line's length equals the others': consistent column count.
    const auto lines_end = text.find('\n');
    ASSERT_NE(lines_end, std::string::npos);
  }
}

TEST(ParseSpec, SplitsOnSemicolons) {
  const auto r = parse_spec(
      "(x.s |> y.s) & (y.r |> x.r) where color(y)=1 ;"
      "(a.s |> b.s) & (b.r |> a.r) where color(a)=1");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.spec->predicates.size(), 2u);
}

TEST(ParseSpec, SinglePredicateWorks) {
  const auto r = parse_spec("(x.s |> y.s) & (y.r |> x.r)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.spec->predicates.size(), 1u);
}

TEST(ParseSpec, EmptyIsAnError) {
  EXPECT_FALSE(parse_spec("").ok());
  EXPECT_FALSE(parse_spec(" ; ; ").ok());
}

TEST(ParseSpec, PropagatesComponentErrors) {
  const auto r = parse_spec("(x.s |> y.s) ; (broken");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.error.empty());
}

}  // namespace
}  // namespace msgorder
