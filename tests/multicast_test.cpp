// The multicast extension (paper conclusion): causal broadcast (tagged)
// and total-order broadcast (general), validated by group-aware oracles.
#include <gtest/gtest.h>

#include "src/apps/multicast.hpp"
#include "src/sim/simulator.hpp"

namespace msgorder {
namespace {

struct BcastOutcome {
  bool completed = false;
  UserRun run;
  Trace trace;
};

BcastOutcome run_broadcast(const ProtocolFactory& factory,
                           std::uint64_t seed, std::size_t n = 4,
                           std::size_t broadcasts = 40,
                           double gap = 0.4) {
  Rng rng(seed);
  BroadcastWorkloadOptions opts;
  opts.n_processes = n;
  opts.n_broadcasts = broadcasts;
  opts.mean_gap = gap;
  const Workload workload = broadcast_workload(opts, rng);
  SimOptions sopts;
  sopts.seed = seed * 17 + 1;
  sopts.network.jitter_mean = 3.0;
  SimResult result = simulate(workload, factory, n, sopts);
  BcastOutcome outcome{result.completed,
                       UserRun{},
                       std::move(result.trace)};
  if (outcome.completed) {
    auto run = outcome.trace.to_user_run();
    EXPECT_TRUE(run.has_value());
    if (run.has_value()) outcome.run = std::move(*run);
  }
  return outcome;
}

TEST(BroadcastWorkload, ExpandsToCopies) {
  Rng rng(1);
  BroadcastWorkloadOptions opts;
  opts.n_processes = 5;
  opts.n_broadcasts = 10;
  const Workload w = broadcast_workload(opts, rng);
  ASSERT_EQ(w.size(), 40u);  // 10 * (5-1)
  for (const InvokeRequest& req : w) {
    EXPECT_GE(req.message.mcast, 0);
    EXPECT_LT(req.message.mcast, 10);
    EXPECT_NE(req.message.src, req.message.dst);
  }
  // All copies of a group share src and time.
  for (int g = 0; g < 10; ++g) {
    ProcessId src = 0;
    bool first = true;
    for (const InvokeRequest& req : w) {
      if (req.message.mcast != g) continue;
      if (first) {
        src = req.message.src;
        first = false;
      }
      EXPECT_EQ(req.message.src, src);
    }
  }
}

TEST(CausalBroadcastBss, SatisfiesCausalBroadcastOrder) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const BcastOutcome outcome =
        run_broadcast(CausalBroadcastBss::factory(), seed);
    ASSERT_TRUE(outcome.completed) << "seed " << seed;
    EXPECT_TRUE(causal_broadcast_ok(outcome.run)) << "seed " << seed;
  }
}

TEST(CausalBroadcastBss, NoControlMessagesLinearTag) {
  const BcastOutcome outcome =
      run_broadcast(CausalBroadcastBss::factory(), 3, 6);
  ASSERT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.trace.control_packets(), 0u);
  EXPECT_EQ(outcome.trace.mean_tag_bytes(), 6 * 4.0);  // one vector
}

TEST(AsyncBroadcast, EventuallyViolatesCausalOrder) {
  bool violated = false;
  for (std::uint64_t seed = 1; seed <= 20 && !violated; ++seed) {
    const BcastOutcome outcome =
        run_broadcast(AsyncBroadcast::factory(), seed, 4, 50, 0.2);
    if (!outcome.completed) continue;
    violated = !causal_broadcast_ok(outcome.run);
  }
  EXPECT_TRUE(violated);
}

TEST(AsyncBroadcast, EventuallyViolatesTotalOrder) {
  bool violated = false;
  for (std::uint64_t seed = 1; seed <= 20 && !violated; ++seed) {
    const BcastOutcome outcome =
        run_broadcast(AsyncBroadcast::factory(), seed, 4, 50, 0.2);
    if (!outcome.completed) continue;
    violated = !total_order_ok(outcome.run);
  }
  EXPECT_TRUE(violated);
}

TEST(TotalOrderBroadcast, SatisfiesTotalOrder) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const BcastOutcome outcome =
        run_broadcast(TotalOrderBroadcast::factory(), seed);
    ASSERT_TRUE(outcome.completed) << "seed " << seed;
    EXPECT_TRUE(total_order_ok(outcome.run)) << "seed " << seed;
  }
}

TEST(TotalOrderBroadcast, UsesControlMessages) {
  const BcastOutcome outcome =
      run_broadcast(TotalOrderBroadcast::factory(), 5);
  ASSERT_TRUE(outcome.completed);
  EXPECT_GT(outcome.trace.control_packets(), 0u);
}

TEST(CausalBroadcastBss, DoesNotGuaranteeTotalOrder) {
  // Causal broadcast leaves concurrent broadcasts unordered: some seed
  // must show disagreement.
  bool violated = false;
  for (std::uint64_t seed = 1; seed <= 25 && !violated; ++seed) {
    const BcastOutcome outcome = run_broadcast(
        CausalBroadcastBss::factory(), seed, 4, 60, 0.15);
    if (!outcome.completed) continue;
    violated = !total_order_ok(outcome.run);
  }
  EXPECT_TRUE(violated);
}

TEST(Checkers, HandCraftedViolations) {
  // Two broadcasts (group 0 by P0, group 1 by P1) to a third process;
  // P2 delivers them one way, P3... use 2 copies each to 2 receivers.
  std::vector<Message> ms = {
      {0, 0, 2, 0, 0}, {1, 0, 3, 0, 0},  // group 0 from P0
      {2, 1, 2, 0, 1}, {3, 1, 3, 0, 1},  // group 1 from P1
  };
  using K = UserEventKind;
  // Disagreement: P2 delivers g0 then g1; P3 delivers g1 then g0.
  auto run = UserRun::from_schedules(
      ms, {{{0, K::kSend}, {1, K::kSend}},
           {{2, K::kSend}, {3, K::kSend}},
           {{0, K::kDeliver}, {2, K::kDeliver}},
           {{3, K::kDeliver}, {1, K::kDeliver}}});
  ASSERT_TRUE(run.has_value());
  EXPECT_FALSE(total_order_ok(*run));
  // The sends are concurrent, so causal broadcast order still holds.
  EXPECT_TRUE(causal_broadcast_ok(*run));
}

TEST(Checkers, CausalViolationDetected) {
  // P0 broadcasts g0; P1 delivers it, then broadcasts g1; P2 gets g1
  // before g0: causal violation.
  std::vector<Message> ms = {
      {0, 0, 1, 0, 0}, {1, 0, 2, 0, 0},  // group 0 from P0
      {2, 1, 0, 0, 1}, {3, 1, 2, 0, 1},  // group 1 from P1
  };
  using K = UserEventKind;
  auto run = UserRun::from_schedules(
      ms, {{{0, K::kSend}, {1, K::kSend}, {2, K::kDeliver}},
           {{0, K::kDeliver}, {2, K::kSend}, {3, K::kSend}},
           {{3, K::kDeliver}, {1, K::kDeliver}}});
  ASSERT_TRUE(run.has_value());
  EXPECT_FALSE(causal_broadcast_ok(*run));
}

TEST(Checkers, GroupHelpers) {
  std::vector<Message> ms = {{0, 0, 1, 0, 7}, {1, 0, 2, 0, 7}};
  using K = UserEventKind;
  auto run = UserRun::from_schedules(
      ms, {{{0, K::kSend}, {1, K::kSend}},
           {{0, K::kDeliver}},
           {{1, K::kDeliver}}});
  ASSERT_TRUE(run.has_value());
  const auto send = group_send(*run, 7);
  ASSERT_TRUE(send.has_value());
  EXPECT_EQ(send->msg, 0u);
  EXPECT_EQ(group_copy_at(*run, 7, 2), std::optional<MessageId>(1));
  EXPECT_FALSE(group_copy_at(*run, 7, 0).has_value());
  EXPECT_FALSE(group_send(*run, 9).has_value());
}

}  // namespace
}  // namespace msgorder
