// msgorder_lint — static analysis CLI for spec files (ISSUE 5 tentpole).
//
//   msgorder_lint [options] <file.spec ...>
//   msgorder_lint --spec '(x.s |> y.s) & (y.r |> x.r)'
//   msgorder_lint --library
//
// Options:
//   --spec TEXT       lint an inline spec string (repeatable)
//   --library         lint every built-in spec_zoo entry and composite,
//                     using each entry's recorded classification as the
//                     declared intent
//   --json PATH       also write a msgorder.lint/1 artifact (readable by
//                     msgorder_stats)
//   --fail-on LEVEL   error | warning | hint | note | never (default:
//                     error) — exit 1 when any diagnostic at LEVEL or
//                     above is emitted
//   --no-explain      suppress the L012 explanation notes
//   --list-rules      print the rule catalog and exit
//   --quiet           only print inputs that have diagnostics
//
// Spec files: `;` separates predicates of a composite; full-line `#`
// comments are ignored (with byte offsets preserved, so spans still
// point at the real file position); a `# expect: <class>` pragma
// declares intent (tagless | tagged | general | not-implementable).
//
// Exit codes: 0 clean, 1 findings at or above --fail-on, 2 usage or
// unreadable input.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.hpp"
#include "src/spec/library.hpp"
#include "src/spec/lint.hpp"

namespace {

using msgorder::LintInput;
using msgorder::LintOptions;
using msgorder::LintSeverity;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] <file.spec ...>\n"
      "       %s --spec 'TEXT' [--spec 'TEXT' ...]\n"
      "       %s --library\n"
      "\n"
      "Lints forbidden-predicate specifications: vacuous or\n"
      "contradictory predicates, redundant conjuncts and constraints,\n"
      "dead variables, duplicate predicates, plus an explanation of\n"
      "each protocol-class verdict (witness cycle, beta vertices).\n"
      "\n"
      "  --spec TEXT      lint an inline spec string (repeatable)\n"
      "  --library        lint the built-in spec library\n"
      "  --json PATH      write a msgorder.lint/1 artifact\n"
      "  --fail-on LEVEL  error|warning|hint|note|never (default error)\n"
      "  --no-explain     suppress L012 explanation notes\n"
      "  --list-rules     print the rule catalog and exit\n"
      "  --quiet          only print inputs with diagnostics\n",
      argv0, argv0, argv0);
  return 2;
}

int list_rules() {
  for (const msgorder::LintRule& rule : msgorder::lint_rules()) {
    std::printf("%s  %-24s  %-7s  %s\n", std::string(rule.id).c_str(),
                std::string(rule.name).c_str(),
                msgorder::to_string(rule.severity).c_str(),
                std::string(rule.summary).c_str());
  }
  return 0;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The built-in library as lintable inputs: every spec_zoo entry with
/// its recorded classification as declared intent, plus the composite
/// builders that have no zoo entry.
std::vector<LintInput> library_inputs(const LintOptions& base) {
  std::vector<LintInput> inputs;
  for (const msgorder::NamedSpec& entry : msgorder::spec_zoo()) {
    LintOptions options = base;
    options.expected = entry.expected;
    LintInput input;
    input.name = "library:" + entry.name;
    input.result =
        msgorder::lint_predicate(entry.predicate, nullptr, options);
    inputs.push_back(std::move(input));
  }
  const struct {
    const char* name;
    msgorder::CompositeSpec spec;
    msgorder::ProtocolClass expected;
  } composites[] = {
      {"two_way_flush", msgorder::two_way_flush(),
       msgorder::ProtocolClass::kTagged},
      {"global_two_way_flush", msgorder::global_two_way_flush(),
       msgorder::ProtocolClass::kTagged},
      {"logically_synchronous_4", msgorder::logically_synchronous(4),
       msgorder::ProtocolClass::kGeneral},
  };
  for (const auto& composite : composites) {
    LintOptions options = base;
    options.expected = composite.expected;
    LintInput input;
    input.name = std::string("library:") + composite.name;
    input.result = msgorder::lint_spec(composite.spec, nullptr, options);
    inputs.push_back(std::move(input));
  }
  return inputs;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::string> inline_specs;
  bool use_library = false;
  bool quiet = false;
  LintOptions base_options;
  std::string json_path;
  // kError + 1 encodes --fail-on never.
  int fail_at = static_cast<int>(LintSeverity::kError);

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--list-rules") {
      return list_rules();
    } else if (arg == "--spec") {
      if (++i >= argc) return usage(argv[0]);
      inline_specs.push_back(argv[i]);
    } else if (arg == "--library") {
      use_library = true;
    } else if (arg == "--json") {
      if (++i >= argc) return usage(argv[0]);
      json_path = argv[i];
    } else if (arg == "--no-explain") {
      base_options.explain = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--fail-on") {
      if (++i >= argc) return usage(argv[0]);
      const std::string level = argv[i];
      if (level == "never") {
        fail_at = static_cast<int>(LintSeverity::kError) + 1;
      } else if (level == "note") {
        fail_at = static_cast<int>(LintSeverity::kNote);
      } else if (level == "hint") {
        fail_at = static_cast<int>(LintSeverity::kHint);
      } else if (level == "warning") {
        fail_at = static_cast<int>(LintSeverity::kWarning);
      } else if (level == "error") {
        fail_at = static_cast<int>(LintSeverity::kError);
      } else {
        std::fprintf(stderr, "msgorder_lint: bad --fail-on '%s'\n",
                     level.c_str());
        return 2;
      }
    } else if (arg.size() > 1 && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() && inline_specs.empty() && !use_library) {
    return usage(argv[0]);
  }

  std::vector<LintInput> inputs;
  for (std::size_t i = 0; i < inline_specs.size(); ++i) {
    LintInput input;
    input.name = inline_specs.size() == 1
                     ? "<spec>"
                     : "<spec#" + std::to_string(i + 1) + ">";
    input.source_text = inline_specs[i];
    input.result = msgorder::lint_text(inline_specs[i], base_options);
    inputs.push_back(std::move(input));
  }
  for (const std::string& path : files) {
    const auto raw = read_file(path);
    if (!raw.has_value()) {
      std::fprintf(stderr, "msgorder_lint: cannot read %s\n", path.c_str());
      return 2;
    }
    // Pragma extraction (including a malformed `# expect:` class, which
    // becomes an L017 diagnostic) happens inside lint_file_text, so a
    // bad pragma renders, counts toward --fail-at, and lands in the
    // artifact like every other rule.
    msgorder::SpecFileText file;
    LintInput input;
    input.name = path;
    input.result = msgorder::lint_file_text(*raw, base_options, &file);
    input.source_text = std::move(file.text);
    inputs.push_back(std::move(input));
  }
  if (use_library) {
    for (LintInput& input : library_inputs(base_options)) {
      inputs.push_back(std::move(input));
    }
  }

  bool failed = false;
  for (const LintInput& input : inputs) {
    if (fail_at <= static_cast<int>(LintSeverity::kError) &&
        input.result.count_at_least(static_cast<LintSeverity>(fail_at)) >
            0) {
      failed = true;
    }
    if (quiet && input.result.diagnostics.empty()) continue;
    std::fputs(msgorder::render_lint_text(input.result, input.source_text,
                                          input.name)
                   .c_str(),
               stdout);
  }

  if (!json_path.empty()) {
    std::string error;
    if (!msgorder::write_text_file(
            json_path, msgorder::lint_artifact_json(inputs), &error)) {
      std::fprintf(stderr, "msgorder_lint: %s\n", error.c_str());
      return 2;
    }
    std::fprintf(stderr, "msgorder_lint: wrote %s\n", json_path.c_str());
  }
  return failed ? 1 : 0;
}
