// msgorder_query — causal queries over msgorder.tracelog/1 logs
// (ISSUE 9 tentpole).
//
//   msgorder_query summary <log>
//   msgorder_query cone    <log> --msg N [--kind s*|s|r*|r] [--future]
//                                [--limit N]
//   msgorder_query cut     <log> --at T
//   msgorder_query why     <log> --msg N
//   msgorder_query diverge <a> <b> [--context N]
//
// Every subcommand takes --json to emit msgorder.query/1 instead of
// text.  Exit codes: 0 success (for diverge: the logs are identical),
// 1 diverge found a divergence, 2 usage or load failure.  The query
// logic lives in src/obs/tracelog_index.* so the golden tests drive it
// without a subprocess (the msgorder_stats pattern).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/tracelog_index.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s summary <log> [--json]\n"
               "       %s cone    <log> --msg N [--kind s*|s|r*|r]"
               " [--future] [--limit N] [--json]\n"
               "       %s cut     <log> --at T [--json]\n"
               "       %s why     <log> --msg N [--json]\n"
               "       %s diverge <a> <b> [--context N] [--json]\n"
               "\n"
               "Causal queries over msgorder.tracelog/1 logs: the event\n"
               "cone (causal past, or future with --future) of a message\n"
               "event, the consistent cut at an instant, the transitive\n"
               "why-blocked chain of a held message, or the first\n"
               "diverging record between two runs with causal context\n"
               "from both sides.  Exit codes: 0 success (diverge: logs\n"
               "identical), 1 diverge found a divergence, 2 usage or\n"
               "load failure.\n",
               argv0, argv0, argv0, argv0, argv0);
  return 2;
}

struct ParsedArgs {
  std::vector<std::string> positional;
  bool json = false;
  bool future = false;
  std::optional<std::uint64_t> msg;
  std::optional<msgorder::EventKind> kind;
  bool kind_given = false;
  std::string kind_name;
  std::optional<double> at;
  std::size_t limit = 0;
  std::size_t context = 12;
  std::string error;
};

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

ParsedArgs parse_args(int argc, char** argv) {
  ParsedArgs out;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      out.json = true;
    } else if (arg == "--future") {
      out.future = true;
    } else if (arg == "--msg" || arg == "--limit" || arg == "--context" ||
               arg == "--kind" || arg == "--at") {
      if (++i >= argc) {
        out.error = arg + " requires an argument";
        return out;
      }
      if (arg == "--kind") {
        out.kind_given = true;
        out.kind_name = argv[i];
        out.kind = msgorder::parse_event_kind(argv[i]);
        continue;
      }
      if (arg == "--at") {
        char* end = nullptr;
        out.at = std::strtod(argv[i], &end);
        if (end == argv[i] || *end != '\0') {
          out.error = "bad --at " + std::string(argv[i]);
          return out;
        }
        continue;
      }
      std::uint64_t value = 0;
      if (!parse_u64(argv[i], &value)) {
        out.error = "bad " + arg + " " + argv[i];
        return out;
      }
      if (arg == "--msg") out.msg = value;
      if (arg == "--limit") out.limit = static_cast<std::size_t>(value);
      if (arg == "--context") out.context = static_cast<std::size_t>(value);
    } else if (arg.size() > 1 && arg[0] == '-') {
      out.error = "unknown flag " + arg;
      return out;
    } else {
      out.positional.push_back(arg);
    }
  }
  return out;
}

int emit(const msgorder::QueryOutput& out, bool json) {
  std::fputs(json ? out.json.c_str() : out.text.c_str(), stdout);
  return out.exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h") {
    usage(argv[0]);
    return 0;
  }
  const ParsedArgs args = parse_args(argc, argv);
  if (!args.error.empty()) {
    std::fprintf(stderr, "msgorder_query: %s\n", args.error.c_str());
    return 2;
  }

  if (cmd == "summary") {
    if (args.positional.size() != 1) return usage(argv[0]);
    return emit(msgorder::query_summary(args.positional[0]), args.json);
  }
  if (cmd == "cone") {
    if (args.positional.size() != 1 || !args.msg.has_value()) {
      return usage(argv[0]);
    }
    if (args.kind_given && !args.kind.has_value()) {
      std::fprintf(stderr,
                   "msgorder_query: unknown --kind %s "
                   "(expected s*, s, r*, r, or invoke/send/receive/deliver)\n",
                   args.kind_name.c_str());
      return 2;
    }
    const msgorder::EventKind kind =
        args.kind.value_or(msgorder::EventKind::kDeliver);
    return emit(msgorder::query_cone(args.positional[0],
                                     static_cast<msgorder::MessageId>(*args.msg),
                                     kind, args.future, args.limit),
                args.json);
  }
  if (cmd == "cut") {
    if (args.positional.size() != 1 || !args.at.has_value()) {
      return usage(argv[0]);
    }
    return emit(msgorder::query_cut(args.positional[0], *args.at), args.json);
  }
  if (cmd == "why") {
    if (args.positional.size() != 1 || !args.msg.has_value()) {
      return usage(argv[0]);
    }
    return emit(msgorder::query_why(
                    args.positional[0],
                    static_cast<msgorder::MessageId>(*args.msg)),
                args.json);
  }
  if (cmd == "diverge") {
    if (args.positional.size() != 2) return usage(argv[0]);
    return emit(msgorder::query_diverge(args.positional[0],
                                        args.positional[1], args.context),
                args.json);
  }
  std::fprintf(stderr, "msgorder_query: unknown subcommand %s\n", cmd.c_str());
  return usage(argv[0]);
}
