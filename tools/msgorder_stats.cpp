// msgorder_stats — trace/report analysis CLI (ISSUE 4 tentpole).
//
// Summary mode:   msgorder_stats <artifact.json> [...]
// Diff mode:      msgorder_stats --diff <baseline.json> <current.json>
//                                [--threshold FRAC] [--fields a,b,c]
//
// Exit codes: 0 success (diff within threshold), 1 diff regression,
// 2 usage, load/parse failure, or mismatched schema versions (a diff
// across schema bumps only matches the leaves both versions share, so
// it would silently un-gate every renamed field — regenerate the
// committed baseline instead).  The CI bench gate runs the diff mode
// against the committed BENCH_*.json copies.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/json_value.hpp"
#include "src/obs/stats.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <artifact.json> [more.json ...]\n"
               "       %s --diff <baseline.json> <current.json>"
               " [--threshold FRAC] [--fields a,b,c]\n"
               "\n"
               "Summarizes msgorder JSON artifacts (run reports, bench\n"
               "reports, flight-recorder dumps, Chrome traces), or diffs\n"
               "two of them.  Diff direction and per-field noise floors\n"
               "come from the artifacts' own field_meta declarations when\n"
               "present (effective threshold = max(--threshold,\n"
               "noise_floor)); leaves without metadata fall back to the\n"
               "leaf-name heuristic.  Diff exit codes: 0 within\n"
               "threshold, 1 at least one regression, 2 bad usage,\n"
               "unreadable input, or mismatched schema versions.\n",
               argv0, argv0);
  return 2;
}

std::optional<msgorder::JsonValue> load(const char* path) {
  std::string error;
  auto doc = msgorder::json_parse_file(path, &error);
  if (!doc) std::fprintf(stderr, "msgorder_stats: %s\n", error.c_str());
  return doc;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string part =
        csv.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!part.empty()) out.push_back(part);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int run_diff(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  msgorder::StatsDiffOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (++i >= argc) return usage(argv[0]);
      char* end = nullptr;
      options.threshold = std::strtod(argv[i], &end);
      if (end == argv[i] || options.threshold < 0) {
        std::fprintf(stderr, "msgorder_stats: bad --threshold %s\n", argv[i]);
        return 2;
      }
    } else if (arg == "--fields") {
      if (++i >= argc) return usage(argv[0]);
      options.fields = split_csv(argv[i]);
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (current_path == nullptr) {
      current_path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) {
    return usage(argv[0]);
  }
  const auto baseline = load(baseline_path);
  const auto current = load(current_path);
  if (!baseline || !current) return 2;
  std::printf("baseline: %s\ncurrent:  %s\n", baseline_path, current_path);
  const msgorder::StatsDiff diff =
      msgorder::stats_diff(*baseline, *current, options);
  std::fputs(diff.text.c_str(), stdout);
  if (diff.schema_mismatch()) {
    std::fprintf(stderr,
                 "msgorder_stats: refusing to gate across schema versions "
                 "(baseline \"%s\" vs current \"%s\"); regenerate the "
                 "baseline artifact\n",
                 diff.baseline_schema.c_str(), diff.current_schema.c_str());
    return 2;
  }
  return diff.regressed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  if (std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    usage(argv[0]);
    return 0;
  }
  if (std::strcmp(argv[1], "--diff") == 0) return run_diff(argc, argv);

  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') return usage(argv[0]);
    const auto doc = load(argv[i]);
    if (!doc) return 2;
    if (argc > 2) std::printf("== %s ==\n", argv[i]);
    std::fputs(msgorder::stats_summary(*doc).c_str(), stdout);
  }
  return 0;
}
