// msgorder_verify — exhaustive bounded verification CLI (ISSUE 10
// tentpole).  Explores every delivery interleaving a channel model
// allows for each selected stack on the standard scenario set, and
// reports the first spec violation / deadlock / hold-soundness breach /
// control-message leak as a replayable counterexample.
//
//   msgorder_verify --all [--procs N] [--msgs N] [--channel-model M]
//   msgorder_verify --stack fifo --json report.json
//   msgorder_verify --stack mutant:fifo-overtake --tracelog ce.log
//
// Exit codes: 0 = every selected stack verified (or bounded under
// --quick / --max-states — never a false "verified"), 1 = at least one
// counterexample-class verdict (the CI mutant gate asserts exactly this
// exit for every seeded mutant), 2 = usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/json.hpp"
#include "src/verify/report.hpp"
#include "src/verify/scenario.hpp"
#include "src/verify/stacks.hpp"
#include "src/verify/verifier.hpp"

namespace {

using namespace msgorder;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--stack NAME | --all [--mutants]] [--list]\n"
      "       [--procs N] [--msgs N] [--channel-model fifo|reorder|lossy]\n"
      "       [--scenarios K] [--no-por] [--no-state-cache]\n"
      "       [--quick] [--max-states N] [--max-drops N]\n"
      "       [--json PATH|-] [--tracelog PATH]\n"
      "\n"
      "Exhaustively verifies protocol stacks on bounded scenarios\n"
      "(default scope: 3 processes, 4 messages, reorder channels).\n"
      "--all runs every registry stack plus the synthesized causal\n"
      "stack; --mutants adds the seeded-bug stacks (which must be\n"
      "flagged, so their runs exit 1).  --scenarios K appends K seeded\n"
      "random scenarios to the standard twelve.  --quick caps the\n"
      "per-scenario state budget and reports \"bounded\" instead of a\n"
      "false \"verified\".  --tracelog replays the first counterexample\n"
      "into a msgorder.tracelog/1 log for msgorder_query why/diverge.\n"
      "\n"
      "Exit codes: 0 verified/bounded, 1 counterexample found, 2 usage\n"
      "or I/O error.\n",
      argv0);
  return 2;
}

bool parse_size(const char* s, std::size_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string stack_name;
  bool all = false;
  bool list = false;
  bool include_mutants = false;
  std::size_t n_processes = 3;
  std::size_t n_messages = 4;
  std::size_t extra_scenarios = 0;
  std::string json_path;
  std::string tracelog_path;
  bool quick = false;
  VerifyOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stack") {
      if (++i >= argc) return usage(argv[0]);
      stack_name = argv[i];
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--mutants") {
      include_mutants = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--procs") {
      if (++i >= argc || !parse_size(argv[i], &n_processes)) {
        return usage(argv[0]);
      }
    } else if (arg == "--msgs") {
      if (++i >= argc || !parse_size(argv[i], &n_messages)) {
        return usage(argv[0]);
      }
    } else if (arg == "--channel-model") {
      if (++i >= argc) return usage(argv[0]);
      const auto model = parse_channel_model(argv[i]);
      if (!model.has_value()) {
        std::fprintf(stderr, "msgorder_verify: unknown channel model %s\n",
                     argv[i]);
        return 2;
      }
      options.channel_model = *model;
    } else if (arg == "--scenarios") {
      if (++i >= argc || !parse_size(argv[i], &extra_scenarios)) {
        return usage(argv[0]);
      }
    } else if (arg == "--no-por") {
      options.por = false;
    } else if (arg == "--no-state-cache") {
      options.state_cache = false;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--max-states") {
      if (++i >= argc || !parse_size(argv[i], &options.max_states)) {
        return usage(argv[0]);
      }
    } else if (arg == "--max-drops") {
      if (++i >= argc || !parse_size(argv[i], &options.max_drops)) {
        return usage(argv[0]);
      }
    } else if (arg == "--json") {
      if (++i >= argc) return usage(argv[0]);
      json_path = argv[i];
    } else if (arg == "--tracelog") {
      if (++i >= argc) return usage(argv[0]);
      tracelog_path = argv[i];
    } else {
      std::fprintf(stderr, "msgorder_verify: unknown argument %s\n",
                   arg.c_str());
      return usage(argv[0]);
    }
  }
  if (quick && options.max_states == 0) options.max_states = 20000;

  if (list) {
    for (const VerifyTarget& t : verify_targets(true)) {
      std::string note;
      if (t.is_mutant) {
        note = "  [mutant; expect " + t.expected_verdict + "]";
      }
      std::printf("%-24s %s%s\n", t.name.c_str(), t.description.c_str(),
                  note.c_str());
    }
    return 0;
  }
  if (stack_name.empty() && !all) return usage(argv[0]);
  if (!stack_name.empty() && all) {
    std::fprintf(stderr, "msgorder_verify: --stack and --all conflict\n");
    return 2;
  }

  std::vector<VerifyTarget> targets;
  if (all) {
    targets = verify_targets(include_mutants);
  } else {
    auto target = find_verify_target(stack_name);
    if (!target.has_value()) {
      std::fprintf(stderr, "msgorder_verify: unknown stack %s (try --list)\n",
                   stack_name.c_str());
      return 2;
    }
    targets.push_back(std::move(*target));
  }

  std::vector<Scenario> scenarios =
      standard_scenarios(n_processes, n_messages);
  for (std::size_t k = 0; k < extra_scenarios; ++k) {
    scenarios.push_back(random_scenario(n_processes, n_messages, k + 1));
  }

  std::vector<StackReport> reports;
  bool any_counterexample = false;
  bool tracelog_written = false;
  for (const VerifyTarget& target : targets) {
    StackReport report = verify_stack(target.name, target.factory,
                                      target.spec, scenarios, options);
    const char* note = "";
    if (target.is_mutant) {
      note = report.ok() ? "  [MUTANT NOT FLAGGED]" : "  [mutant flagged]";
    }
    std::printf("%-24s %-14s %zu scenarios, %zu states, %zu transitions%s\n",
                report.stack.c_str(), report.verdict.c_str(),
                report.scenarios.size(), report.states_total,
                report.transitions_total, note);
    for (const ScenarioResult& s : report.scenarios) {
      if (s.counterexample.has_value()) {
        std::printf("  counterexample in %s: %s (%zu-step schedule)\n",
                    s.scenario.c_str(), s.detail.c_str(),
                    s.counterexample->schedule.size());
        if (!tracelog_path.empty() && !tracelog_written) {
          const Scenario* scenario = nullptr;
          for (const Scenario& cand : scenarios) {
            if (cand.name == s.scenario) scenario = &cand;
          }
          std::string error;
          if (scenario == nullptr ||
              !replay_counterexample(*scenario, target.factory, target.name,
                                     options, *s.counterexample,
                                     tracelog_path, &error)) {
            std::fprintf(stderr, "msgorder_verify: tracelog replay: %s\n",
                         error.empty() ? "scenario not found" : error.c_str());
            return 2;
          }
          std::printf("  counterexample replayed to %s\n",
                      tracelog_path.c_str());
          tracelog_written = true;
        }
      }
    }
    if (!report.ok()) any_counterexample = true;
    reports.push_back(std::move(report));
  }

  if (!json_path.empty()) {
    JsonWriter w;
    write_verify_json(w, reports, n_processes, n_messages, options);
    if (json_path == "-") {
      std::printf("%s\n", w.str().c_str());
    } else {
      std::string error;
      if (!write_text_file(json_path, w.str() + "\n", &error)) {
        std::fprintf(stderr, "msgorder_verify: %s\n", error.c_str());
        return 2;
      }
    }
  }
  return any_counterexample ? 1 : 0;
}
